"""Pluggable transports: where a cluster's site workers actually live.

The Section 4.3 protocol is defined over *sites* exchanging messages; it
never says the sites must share an interpreter.  A
:class:`~repro.distributed.coordinator.Cluster` therefore delegates the
"host the workers, evaluate a query, route an update" mechanics to a
:class:`Transport`:

* :class:`InProcTransport` — today's in-process workers, evaluated
  serially or on one thread per site.  Zero behavior change: workers
  charge the cluster's :class:`~repro.distributed.network.MessageBus`
  directly and cross-site fetches read the owning peer's fragment.
* :class:`ProcessTransport` — one OS process per site, talking over
  ``multiprocessing`` pipes.  Queries are *broadcast* in wire form
  (:mod:`repro.distributed.runtime.wire`); updates are **batched** —
  deltas buffer per site and ship as one ``update`` frame per site at
  the next flush point (query, stats, forget, i.e. anything that could
  observe worker state), so an N-delta burst costs one pipe round trip
  per affected site instead of N request/reply acks.  Cross-site
  ``fetch`` is request/reply, answered by the coordinator from its
  mirror fragments (the same records the owning peer would serve — both
  are maintained by the same delta stream); per-site fetch charges ship
  back with the partials and are replayed onto the bus in site order.
  Site evaluation runs off-GIL on real cores; each worker process keeps
  its warm ``SiteGraphIndex`` across queries and updates.

Every transport yields byte-identical protocol observations — result
set, per-site partial counts, message count, units per kind and per
directed link — enforced by ``tests/test_runtime.py`` through the
``tests/engines.py`` harness.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional

from repro.core.digraph import Node
from repro.core.pattern import Pattern
from repro.core.result import PerfectSubgraph
from repro.distributed.network import MessageBus
from repro.distributed.runtime.procworker import worker_main
from repro.distributed.runtime.wire import (
    decode_bus_log,
    decode_metrics,
    decode_partials,
    decode_span,
    encode_deltas,
    encode_fragment,
    encode_pattern,
)
from repro.distributed.worker import SiteWorker
from repro.exceptions import DistributedError
from repro.obs.trace import tracing_enabled

#: The cluster backends, in "zero surprises" order: ``inproc`` is the
#: serial reference, ``threads`` adds concurrency inside one
#: interpreter, ``processes`` adds real multi-core parallelism.
BACKENDS = ("inproc", "threads", "processes")

#: Start methods the process backend can run on, in preference order:
#: ``fork`` reuses the warm parent interpreter (cheap, inherits the hash
#: seed), the others pay a fresh-interpreter bootstrap per site.
_START_METHODS = ("fork", "forkserver", "spawn")


def resolve_backend(backend: Optional[str], parallel: bool = False) -> str:
    """Validate ``backend``; ``None`` keeps the legacy ``parallel`` map."""
    if backend is None:
        return "threads" if parallel else "inproc"
    if backend not in BACKENDS:
        raise DistributedError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


def process_backend_available() -> bool:
    """True when this platform can host one worker process per site."""
    try:
        methods = multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms only
        return False
    return any(method in methods for method in _START_METHODS)


def _make_context():
    methods = multiprocessing.get_all_start_methods()
    for method in _START_METHODS:
        if method in methods:
            return multiprocessing.get_context(method)
    raise DistributedError(
        "the 'processes' backend needs fork/forkserver/spawn support, "
        "none of which this platform provides"
    )


class Transport:
    """Hosts a cluster's site workers and routes the protocol to them."""

    #: Coordinator-hosted shared distributed result store (a
    #: ``repro.service.cache.ResultCache``), or ``None``.  It lives on
    #: the transport because that is the coordinator-side object whose
    #: lifetime matches the workers': the process backend creates one
    #: eagerly (N front-end services over one cluster share warm
    #: entries and single-flight leadership), the in-process backends
    #: leave it ``None`` until ``Cluster.enable_result_store`` opts in.
    result_store = None

    def evaluate(
        self,
        pattern: Pattern,
        radius: int,
        engine: Optional[str],
        parallel: bool,
    ) -> Dict[int, List[PerfectSubgraph]]:
        """Step 2 of the protocol: every site's partial Θ_i, in site order.

        Implementations must charge (or replay) each worker's ``fetch``
        traffic on the cluster bus exactly as the serial in-process path
        would, so the full observation stays backend-independent.
        """
        raise NotImplementedError

    def apply_update(self, site_id: int, delta, owner_of) -> None:
        """Apply one owned-fragment delta on ``site_id``'s worker."""
        raise NotImplementedError

    def forget_remote(self, node: Node) -> None:
        """Drop a cluster-wide removed node from every routing table."""
        raise NotImplementedError

    def worker_stats(self) -> Dict[int, Dict[str, object]]:
        """Per-site runtime counters (see ``SiteWorker.runtime_stats``)."""
        raise NotImplementedError

    def site_spans(self) -> Dict[int, object]:
        """The per-site ``site.evaluate`` trace subtrees of the last
        :meth:`evaluate`, by site — empty when tracing was off.  The
        coordinator grafts them under its ``distributed.run`` span."""
        return {}

    def site_metrics(self) -> Dict[int, Dict[str, object]]:
        """Per-site registry snapshots from the last :meth:`evaluate`.

        Only remote-hosted workers report here (their registries live in
        other processes); in-process workers publish straight into the
        coordinator's own registry, which `snapshot()` already covers.
        """
        return {}

    def close(self) -> None:
        """Release transport resources (idempotent)."""
        raise NotImplementedError


class InProcTransport(Transport):
    """Both single-interpreter backends: serial sites or thread-per-site.

    Wraps the workers exactly as PR 4 left them — they share the
    cluster's bus and read peers' fragments directly — so the
    ``inproc`` and ``threads`` backends are today's behavior verbatim.
    The thread pool is created lazily and reused across queries; a
    closed transport re-creates it on the next parallel run, preserving
    the old ``Cluster.close()`` contract.
    """

    def __init__(self, workers: Dict[int, SiteWorker]) -> None:
        self._workers = workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def evaluate(self, pattern, radius, engine, parallel):
        def run_site(worker: SiteWorker) -> List[PerfectSubgraph]:
            worker.clear_cache()
            return worker.match_local(pattern, radius, engine=engine)

        if parallel and len(self._workers) > 1:
            pool = self._pool
            if pool is None:
                # One pool per transport, reused across queries: repeated
                # parallel runs keep their threads (and with them each
                # site index's warm thread-local visited buffers).
                pool = ThreadPoolExecutor(
                    max_workers=len(self._workers),
                    thread_name_prefix="repro-site",
                )
                self._pool = pool
            futures = {
                site: pool.submit(run_site, worker)
                for site, worker in self._workers.items()
            }
            return {site: future.result() for site, future in futures.items()}
        return {
            site: run_site(worker) for site, worker in self._workers.items()
        }

    def apply_update(self, site_id, delta, owner_of):
        self._workers[site_id].apply_update(delta, owner_of)

    def forget_remote(self, node):
        for worker in self._workers.values():
            worker.forget_remote(node)

    def worker_stats(self):
        return {
            site: worker.runtime_stats()
            for site, worker in self._workers.items()
        }

    def site_spans(self):
        return {
            site: worker.last_span
            for site, worker in self._workers.items()
            if worker.last_span is not None
        }

    def close(self):
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


class ProcessTransport(Transport):
    """One worker process per site behind request/reply pipes.

    Parameters
    ----------
    workers:
        The coordinator-side mirror workers.  They never evaluate
        queries; they are the fetch directory (every ``serve_node``
        answer comes from a mirror fragment, which the update path keeps
        in lockstep with the worker processes) and the introspection
        surface (``cluster.workers[site].fragment``).
    assignment:
        The cluster's *live* node-to-site dict (mutated in place by
        ``Cluster.apply_update``), consulted per fetch for ownership.
    bus:
        The cluster bus that per-site fetch logs are replayed onto.
    engine:
        Default engine for the worker processes (per-query overrides
        travel with each query command).
    """

    def __init__(
        self,
        workers: Dict[int, SiteWorker],
        assignment: Dict[Node, int],
        bus: MessageBus,
        engine: str = "auto",
    ) -> None:
        self._workers = workers
        self._assignment = assignment
        self._bus = bus
        self._conns: Dict[int, multiprocessing.connection.Connection] = {}
        self._procs: Dict[int, multiprocessing.process.BaseProcess] = {}
        #: Per-site buffered deltas awaiting one batched ``update`` frame:
        #: ``site -> (deltas in arrival order, merged owner captures)``.
        self._pending_updates: Dict[int, tuple] = {}
        #: Observability payloads the workers shipped with the last
        #: query's ``done`` replies: traced span subtrees (only when the
        #: query ran traced) and registry snapshots (every query).
        self._last_site_spans: Dict[int, object] = {}
        self._last_site_metrics: Dict[int, Dict[str, object]] = {}
        self._closed = False
        # The shared result store (see the Transport class attribute):
        # created before the workers so a bootstrap failure cannot leave
        # a half-built transport with a missing store.  Imported lazily
        # to keep the runtime layer import-independent of the service
        # layer (which imports this package for the distributed path).
        from repro.service.cache import ResultCache

        self.result_store = ResultCache()
        context = _make_context()
        try:
            for site, worker in workers.items():
                parent_end, child_end = context.Pipe()
                process = context.Process(
                    target=worker_main,
                    args=(child_end, encode_fragment(worker.fragment), engine),
                    name=f"repro-site-{site}",
                    daemon=True,
                )
                process.start()
                child_end.close()
                self._conns[site] = parent_end
                self._procs[site] = process
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    def _serve(self, node: Node):
        """Answer one fetch: ``(owner site, record)`` from the mirrors."""
        owner = self._assignment.get(node)
        if owner is None:
            raise DistributedError(f"no site owns node {node!r}")
        return owner, self._workers[owner].serve_node(node)

    def _fail(self, detail: str) -> "DistributedError":
        # A broken protocol exchange leaves workers in an unknown state;
        # tear the processes down before surfacing the error.
        self.close()
        return DistributedError(detail)

    def _recv(self, site: int):
        try:
            return self._conns[site].recv()
        except (EOFError, OSError) as exc:
            raise self._fail(
                f"site {site} worker process died mid-protocol: {exc}"
            ) from exc

    def _ack(self, site: int, command: str) -> None:
        reply = self._recv(site)
        if reply[0] != "ok":
            raise self._fail(
                f"site {site} failed to apply {command}:\n{reply[1]}"
            )

    def _guard_open(self) -> None:
        if self._closed:
            raise DistributedError(
                "this cluster's process transport has been closed"
            )

    def _flush_updates(self) -> None:
        """Ship the buffered deltas: one ``update`` frame per site.

        Frames go out to every site first (sorted order), then the acks
        drain in the same order — the pattern ``forget_remote`` already
        uses — so an N-delta burst costs one pipe round trip per
        *affected site*, not one per delta.  The buffer is detached
        before any send so a protocol failure (which closes the
        transport) cannot re-enter this flush.
        """
        pending, self._pending_updates = self._pending_updates, {}
        if not pending:
            return
        for site in sorted(pending):
            deltas, owners = pending[site]
            self._conns[site].send(
                ("update", encode_deltas(tuple(deltas)), owners)
            )
        for site in sorted(pending):
            deltas, _ = pending[site]
            self._ack(site, f"a batch of {len(deltas)} delta(s)")

    # ------------------------------------------------------------------
    def evaluate(self, pattern, radius, engine, parallel):
        # ``parallel`` is meaningless here: the sites always run
        # concurrently, one process each.
        self._guard_open()
        self._flush_updates()
        wire_pattern = encode_pattern(pattern)
        trace = tracing_enabled()
        for conn in self._conns.values():
            conn.send(("query", wire_pattern, radius, engine, trace))
        pending = {conn: site for site, conn in self._conns.items()}
        partials: Dict[int, List[PerfectSubgraph]] = {}
        logs: Dict[int, list] = {}
        self._last_site_spans = {}
        self._last_site_metrics = {}
        while pending:
            for conn in multiprocessing.connection.wait(list(pending)):
                site = pending[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError) as exc:
                    raise self._fail(
                        f"site {site} worker process died mid-query: {exc}"
                    ) from exc
                kind = message[0]
                if kind == "fetch_many":
                    try:
                        records = tuple(
                            self._serve(node) for node in message[1]
                        )
                    except Exception as exc:
                        conn.send(("error", str(exc)))
                    else:
                        conn.send(("records", records))
                elif kind == "done":
                    partials[site] = decode_partials(message[1])
                    logs[site] = decode_bus_log(message[2])
                    shipped_span = decode_span(message[3])
                    if shipped_span is not None:
                        self._last_site_spans[site] = shipped_span
                    self._last_site_metrics[site] = decode_metrics(message[4])
                    del pending[conn]
                else:
                    detail = message[1] if len(message) > 1 else kind
                    raise self._fail(f"site {site} query failed:\n{detail}")
        # Replay fetch accounting in site order: totals per link/kind are
        # order-independent, but a deterministic message list keeps runs
        # reproducible (the serial backend interleaves by site too).
        for site in sorted(logs):
            for sender, receiver, kind, units in logs[site]:
                self._bus.send(sender, receiver, kind, units)
        return {site: partials[site] for site in sorted(partials)}

    def apply_update(self, site_id, delta, owner_of):
        self._guard_open()
        # Mirror first: the coordinator serves fetches from these
        # fragments, so they must track the worker processes exactly —
        # and since the mirror runs the same ``SiteWorker.apply_update``
        # code, a malformed delta still fails loud here, synchronously,
        # even though the pipe write is deferred.
        self._workers[site_id].apply_update(delta, owner_of)
        # Buffer instead of round-tripping per delta: the frame goes out
        # with the site's next batch (flushed before anything that could
        # observe worker state).  Owner captures are taken *now*, per
        # delta, because ``owner_of`` is the cluster's live assignment;
        # merging is safe since a node's owner cannot change between
        # flush points (re-adding a removed node first passes through
        # ``forget_remote``, which flushes).
        deltas, owners = self._pending_updates.setdefault(site_id, ([], {}))
        deltas.append(delta)
        for node in (delta.source, delta.target):
            if node is not None:
                owners[node] = owner_of.get(node)

    def forget_remote(self, node):
        self._guard_open()
        self._flush_updates()
        for site, worker in self._workers.items():
            worker.forget_remote(node)
            self._conns[site].send(("forget", node))
        for site in self._conns:
            self._ack(site, "forget")

    def worker_stats(self):
        self._guard_open()
        self._flush_updates()
        stats: Dict[int, Dict[str, object]] = {}
        for site, conn in self._conns.items():
            conn.send(("stats",))
            reply = self._recv(site)
            if reply[0] != "stats":
                raise self._fail(f"site {site} stats failed:\n{reply[1]}")
            stats[site] = reply[1]
        return stats

    def site_spans(self):
        return dict(self._last_site_spans)

    def site_metrics(self):
        return dict(self._last_site_metrics)

    def close(self):
        if self._closed:
            return
        self._closed = True
        # Undelivered update batches are dropped, not flushed: nothing
        # can observe worker-process state after close (``_guard_open``
        # rejects every later command), and the mirrors — the only state
        # that survives — already applied every delta eagerly.
        self._pending_updates.clear()
        for conn in self._conns.values():
            try:
                conn.send(("shutdown",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        for conn in self._conns.values():
            try:
                conn.close()
            except OSError:  # pragma: no cover - teardown best effort
                pass
        for process in self._procs.values():
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - hung worker only
                process.terminate()
                process.join(timeout=5)


def make_transport(
    backend: str,
    workers: Dict[int, SiteWorker],
    assignment: Dict[Node, int],
    bus: MessageBus,
    engine: str,
) -> Transport:
    """Build the transport for a resolved backend name."""
    if backend == "processes":
        return ProcessTransport(workers, assignment, bus, engine=engine)
    return InProcTransport(workers)
