"""Process-based distributed runtime with a pluggable transport layer.

The Section 4.3 protocol logic lives in
:class:`~repro.distributed.coordinator.Cluster`; *where its site workers
run* is this package's concern:

* ``backend="inproc"`` — serial in-process workers (the reference);
* ``backend="threads"`` — one thread per site, same interpreter
  (GIL-bound for pure-Python evaluation, but architecture-identical);
* ``backend="processes"`` — one OS process per site over
  ``multiprocessing`` pipes, evaluating off-GIL on real cores.

All three produce byte-identical protocol observations; the process
backend additionally needs every payload in explicit wire form
(:mod:`repro.distributed.runtime.wire`) because graphs, patterns and
result subgraphs are deliberately not picklable.
"""

from repro.distributed.runtime.transport import (
    BACKENDS,
    InProcTransport,
    ProcessTransport,
    Transport,
    make_transport,
    process_backend_available,
    resolve_backend,
)
from repro.distributed.runtime.wire import (
    WIRE_VERSION,
    decode_bus_log,
    decode_deltas,
    decode_fragment,
    decode_partials,
    decode_pattern,
    encode_bus_log,
    encode_deltas,
    encode_fragment,
    encode_partials,
    encode_pattern,
)

__all__ = [
    "BACKENDS",
    "InProcTransport",
    "ProcessTransport",
    "Transport",
    "WIRE_VERSION",
    "decode_bus_log",
    "decode_deltas",
    "decode_fragment",
    "decode_partials",
    "decode_pattern",
    "encode_bus_log",
    "encode_deltas",
    "encode_fragment",
    "encode_partials",
    "encode_pattern",
    "make_transport",
    "process_backend_available",
    "resolve_backend",
]
