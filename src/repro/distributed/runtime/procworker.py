"""The worker-process side of the process-backed distributed runtime.

:func:`worker_main` is the entry point of one site's OS process.  It
rebuilds the site's :class:`~repro.distributed.fragment.Fragment` from
its wire form, hosts a :class:`_PipeSiteWorker` — a
:class:`~repro.distributed.worker.SiteWorker` whose cross-site fetches
go through the coordinator pipe instead of in-process peers — and then
serves commands until shut down.  The worker's compiled
``SiteGraphIndex`` lives in this process for its whole lifetime: it is
built on the first kernel query and stays warm across queries *and*
across ``apply_update`` deltas, exactly like the threaded path
(observable via the ``stats`` command's ``index_builds`` counter).

Protocol (one duplex pipe per site; the coordinator end lives in
:class:`~repro.distributed.runtime.transport.ProcessTransport`):

===============================  =====================================
coordinator -> worker             worker -> coordinator
===============================  =====================================
``("query", pattern, r, e, t)``   ``("fetch_many", nodes)`` * per BFS
                                  layer with unmaterialized remotes,
                                  then ``("done", partials, bus_log,
                                  span, metrics)``
``("update", deltas, owner)``     ``("ok",)``
``("forget", node)``              ``("ok",)``
``("stats",)``                    ``("stats", dict)``
``("shutdown",)``                 *(exits)*
===============================  =====================================

Fetch replies arrive as ``("records", ((owner_site, record), ...))`` in
request order; an ``("error", text)`` reply to any command aborts it.
Any exception in the worker is reported as ``("error", traceback)`` so
the coordinator can fail loud with the child's stack attached.  Fetch
requests are batched per ball-BFS layer (one pipe round trip for a
whole layer's missing records) but *accounted* per record: each record
appends one ``(owner, site, "fetch", units)`` entry to a per-query log
that ships back with the partials and is replayed onto the
coordinator's bus, so the protocol observation is byte-identical to the
in-process backends, which charge one bus message per record too.
"""

from __future__ import annotations

import traceback
from typing import List, Tuple

from repro.core.digraph import Node
from repro.distributed.network import MessageBus
from repro.distributed.worker import SiteWorker
from repro.distributed.runtime.wire import (
    decode_deltas,
    decode_fragment,
    decode_pattern,
    encode_bus_log,
    encode_metrics,
    encode_partials,
    encode_span,
)
from repro.exceptions import DistributedError
from repro.obs.metrics import get_registry as _obs_registry
from repro.obs.trace import set_tracing, tracing_enabled


class _PipeSiteWorker(SiteWorker):
    """A site worker whose remote fetches cross a process boundary.

    Only :meth:`_fetch_missing` differs from the in-process worker:
    instead of reading a peer's fragment directly, it round-trips one
    ``fetch_many`` request per batch over the coordinator pipe and logs
    the per-record charges locally.  Ball construction, the per-site
    engines, the warm index and the update path are all inherited
    unchanged — which is what keeps the backends observation-identical
    by construction rather than by reimplementation.
    """

    def __init__(self, fragment, engine: str, conn) -> None:
        # The inherited bus is a local stand-in: per-query charges are
        # logged in fetch_log and replayed coordinator-side instead.
        super().__init__(fragment, MessageBus(), engine=engine)
        self._conn = conn
        self.fetch_log: List[Tuple[int, int, str, int]] = []

    def _fetch_missing(self, nodes: List[Node]) -> None:
        self._conn.send(("fetch_many", tuple(nodes)))
        reply = self._conn.recv()
        if reply[0] != "records":
            raise DistributedError(
                f"fetch of {nodes!r} failed at the coordinator: {reply[1]}"
            )
        site_id = self.fragment.site_id
        self.fetch_round_trips += 1
        self.fetch_records += len(nodes)
        for node, (owner, record) in zip(nodes, reply[1]):
            # Same tariff as the in-process path: one bus message per
            # record, one unit for it plus one per incident edge.
            units = 1 + len(record[1]) + len(record[2])
            self.fetch_log.append((owner, site_id, "fetch", units))
            self.fetch_units += units
            self._remote_cache[node] = record


def worker_main(conn, wire_fragment, engine: str) -> None:
    """Run one site's worker process until shutdown or pipe loss."""
    try:
        fragment = decode_fragment(wire_fragment)
        worker = _PipeSiteWorker(fragment, engine, conn)
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return  # coordinator is gone; nothing left to serve
            command = message[0]
            try:
                if command == "query":
                    _, wire_pattern, radius, engine_override, trace = message
                    pattern = decode_pattern(wire_pattern)
                    worker.clear_cache()
                    worker.fetch_log = []
                    # Per-query tracing: the coordinator's flag turns the
                    # worker's tracing on for exactly this evaluation (a
                    # worker already enabled via REPRO_TRACE stays on).
                    previous = set_tracing(trace or tracing_enabled())
                    try:
                        partial = worker.match_local(
                            pattern, radius, engine=engine_override
                        )
                    finally:
                        set_tracing(previous)
                    conn.send(
                        (
                            "done",
                            encode_partials(partial),
                            encode_bus_log(worker.fetch_log),
                            encode_span(worker.last_span),
                            encode_metrics(_obs_registry().snapshot()),
                        )
                    )
                elif command == "update":
                    _, wire_deltas, owner_of = message
                    for delta in decode_deltas(wire_deltas):
                        worker.apply_update(delta, owner_of)
                    conn.send(("ok",))
                elif command == "forget":
                    worker.forget_remote(message[1])
                    conn.send(("ok",))
                elif command == "stats":
                    conn.send(("stats", worker.runtime_stats()))
                elif command == "shutdown":
                    return
                else:
                    conn.send(("error", f"unknown command {command!r}"))
            except Exception:
                conn.send(("error", traceback.format_exc()))
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - teardown best effort
            pass
