"""Version-stamped wire forms for the process-based distributed runtime.

The in-process cluster passes rich objects between coordinator and
workers by reference; a process-backed cluster cannot.  ``DiGraph`` (and
everything wrapping one — ``Pattern``, ``PerfectSubgraph``) holds weak
references to its delta subscribers, which makes it unpicklable by
design; fragments and deltas *are* picklable but shipping live objects
would silently couple the two sides to implementation details of the
current build.  This module therefore defines explicit wire forms for
exactly the payloads the runtime protocol ships:

* **fragments** — the one-time site bootstrap (node table in fragment
  insertion order, so the child's center iteration matches the
  coordinator's, adjacency as indices into that table, the
  ``remote_owner`` routing table with its stub node ids);
* **patterns** — the per-query broadcast;
* **GraphDelta streams** — the mutation pipeline's update routing;
* **partial-result sets** — each site's Θ_i shipped back to the
  coordinator;
* **per-site bus accounting** — the fetch charges a worker accrued,
  replayed verbatim onto the coordinator's bus so the protocol
  observation is byte-identical to the in-process backends.

Every payload is wrapped ``(magic, version, kind, body)``.  Decoding
validates all three header fields and the body shape and raises
:class:`~repro.exceptions.WireFormatError` on any mismatch, so a frame
from an incompatible runtime version (or a stray object on the pipe)
fails loud at the boundary instead of corrupting a worker.  Round-trips
are exact: ``decode(encode(x))`` reproduces ``x`` including node
insertion order, stub/remote ids and arbitrary hashable node ids and
labels (``None`` included — no wire field uses ``None`` as a sentinel).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.digraph import (
    ADD_EDGE,
    ADD_NODE,
    REMOVE_EDGE,
    REMOVE_NODE,
    RELABEL,
    DiGraph,
    GraphDelta,
)
from repro.core.matchrel import MatchRelation
from repro.core.pattern import Pattern
from repro.core.result import PerfectSubgraph
from repro.distributed.fragment import Fragment
from repro.exceptions import WireFormatError
from repro.obs.metrics import (
    METRICS_SCHEMA_VERSION,
    get_registry as _obs_registry,
)
from repro.obs.trace import Span

#: Bump when any wire form changes shape; both ends must agree exactly.
WIRE_VERSION = 1

_MAGIC = "repro-wire"

#: The payload kinds this protocol ships.
KIND_FRAGMENT = "fragment"
KIND_PATTERN = "pattern"
KIND_DELTAS = "deltas"
KIND_PARTIALS = "partials"
KIND_BUS_LOG = "bus-log"
KIND_RUN_REPORT = "run-report"
KIND_SPAN = "span"
KIND_METRICS = "metrics"


def _stamp(kind: str, body: tuple) -> tuple:
    _obs_registry().counter("wire.frames", kind=kind, op="encode").inc()
    return (_MAGIC, WIRE_VERSION, kind, body)


def _unstamp(kind: str, wire: object) -> tuple:
    """Validate the ``(magic, version, kind, body)`` envelope."""
    _obs_registry().counter("wire.frames", kind=kind, op="decode").inc()
    if not isinstance(wire, tuple) or len(wire) != 4:
        raise WireFormatError(
            f"malformed wire frame: expected a 4-tuple envelope, "
            f"got {type(wire).__name__}"
        )
    magic, version, observed_kind, body = wire
    if magic != _MAGIC:
        raise WireFormatError(f"bad wire magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"wire version {version!r} is not the supported {WIRE_VERSION}"
        )
    if observed_kind != kind:
        raise WireFormatError(
            f"expected a {kind!r} payload, got {observed_kind!r}"
        )
    if not isinstance(body, tuple):
        raise WireFormatError(
            f"malformed {kind!r} body: expected tuple, "
            f"got {type(body).__name__}"
        )
    return body


# ======================================================================
# Fragments
# ======================================================================
def encode_fragment(fragment: Fragment) -> tuple:
    """One site's shard: the bootstrap payload a worker process receives.

    The node table lists owned nodes first, *in fragment insertion
    order* (which is data-graph node order restricted to the site — the
    center iteration order both engines share), then the remote stubs of
    ``remote_owner``.  Adjacency rows are index tuples into that table,
    so arbitrary node ids are interned once each.
    """
    owned = list(fragment.labels)
    remotes = list(fragment.remote_owner)
    table: Dict[object, int] = {
        node: i for i, node in enumerate(owned + remotes)
    }
    succ_rows = tuple(
        tuple(table[t] for t in fragment.succ[node]) for node in owned
    )
    pred_rows = tuple(
        tuple(table[s] for s in fragment.pred[node]) for node in owned
    )
    body = (
        fragment.site_id,
        tuple(owned),
        tuple(fragment.labels[node] for node in owned),
        succ_rows,
        pred_rows,
        tuple(remotes),
        tuple(fragment.remote_owner[node] for node in remotes),
    )
    return _stamp(KIND_FRAGMENT, body)


def decode_fragment(wire: object) -> Fragment:
    """Rebuild a :class:`Fragment` from its wire form."""
    body = _unstamp(KIND_FRAGMENT, wire)
    try:
        site_id, owned, labels, succ_rows, pred_rows, remotes, sites = body
        fragment = Fragment(site_id)
        table: List[object] = list(owned) + list(remotes)
        for node, label in zip(owned, labels):
            fragment.labels[node] = label
        for node, row in zip(owned, succ_rows):
            fragment.succ[node] = {table[i] for i in row}
        for node, row in zip(owned, pred_rows):
            fragment.pred[node] = {table[i] for i in row}
        for node, site in zip(remotes, sites):
            fragment.remote_owner[node] = site
    except (ValueError, TypeError, IndexError) as exc:
        raise WireFormatError(f"malformed fragment body: {exc}") from exc
    if not (
        len(owned) == len(labels) == len(succ_rows) == len(pred_rows)
    ) or len(remotes) != len(sites):
        raise WireFormatError("fragment body sections disagree on length")
    return fragment


# ======================================================================
# Patterns
# ======================================================================
def encode_pattern(pattern: Pattern) -> tuple:
    """The per-query broadcast: nodes (insertion order), labels, edges."""
    nodes = list(pattern.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    body = (
        tuple(nodes),
        tuple(pattern.label(node) for node in nodes),
        tuple((index[a], index[b]) for a, b in pattern.edges()),
    )
    return _stamp(KIND_PATTERN, body)


def decode_pattern(wire: object) -> Pattern:
    """Rebuild a :class:`Pattern`; re-validates connectivity on arrival."""
    body = _unstamp(KIND_PATTERN, wire)
    try:
        nodes, labels, edges = body
        if len(nodes) != len(labels):
            raise WireFormatError("pattern nodes/labels disagree on length")
        graph = DiGraph._build_unchecked(
            zip(nodes, labels),
            [(nodes[a], nodes[b]) for a, b in edges],
        )
    except WireFormatError:
        raise
    except (ValueError, TypeError, IndexError, KeyError) as exc:
        raise WireFormatError(f"malformed pattern body: {exc}") from exc
    return Pattern(graph)


# ======================================================================
# GraphDelta streams
# ======================================================================
_NODE_KINDS = (ADD_NODE, REMOVE_NODE)
_EDGE_KINDS = (ADD_EDGE, REMOVE_EDGE)


def _delta_body(delta: GraphDelta) -> tuple:
    kind = delta.kind
    if kind in _EDGE_KINDS:
        return (kind, delta.source, delta.target)
    if kind in _NODE_KINDS:
        return (kind, delta.node, delta.label)
    if kind == RELABEL:
        return (kind, delta.node, delta.label, delta.old_label)
    raise WireFormatError(f"unknown graph delta kind {kind!r}")


def _delta_from_body(body: object) -> GraphDelta:
    if not isinstance(body, tuple) or not body:
        raise WireFormatError("malformed delta entry")
    kind = body[0]
    if kind in _EDGE_KINDS and len(body) == 3:
        return GraphDelta(kind, source=body[1], target=body[2])
    if kind in _NODE_KINDS and len(body) == 3:
        return GraphDelta(kind, node=body[1], label=body[2])
    if kind == RELABEL and len(body) == 4:
        return GraphDelta(kind, node=body[1], label=body[2], old_label=body[3])
    raise WireFormatError(f"malformed delta entry for kind {kind!r}")


def encode_deltas(deltas: Sequence[GraphDelta]) -> tuple:
    """A delta group (one mutation, or a whole ``batch()`` delivery)."""
    return _stamp(KIND_DELTAS, tuple(_delta_body(d) for d in deltas))


def decode_deltas(wire: object) -> Tuple[GraphDelta, ...]:
    """Rebuild a delta group in delivery order."""
    body = _unstamp(KIND_DELTAS, wire)
    return tuple(_delta_from_body(entry) for entry in body)


# ======================================================================
# Partial-result sets
# ======================================================================
def encode_partials(partial: Sequence[PerfectSubgraph]) -> tuple:
    """A site's partial Θ_i, in discovery (center) order.

    Each subgraph ships its node/label pairs, its edge list, the
    discovering center, and the restricted match relation as
    ``(pattern key, member tuple)`` pairs — the relation's own keys, so
    ``match_plus`` quotient-class keys ride through unchanged.
    """
    entries = []
    for subgraph in partial:
        graph = subgraph.graph
        entries.append(
            (
                tuple((node, graph.label(node)) for node in graph.nodes()),
                tuple(graph.edges()),
                subgraph.center,
                tuple(
                    (u, tuple(subgraph.relation.matches_of_raw(u)))
                    for u in subgraph.relation.pattern_nodes()
                ),
            )
        )
    return _stamp(KIND_PARTIALS, tuple(entries))


def decode_partials(wire: object) -> List[PerfectSubgraph]:
    """Rebuild a partial-result list in shipped order."""
    body = _unstamp(KIND_PARTIALS, wire)
    partial: List[PerfectSubgraph] = []
    try:
        for nodes, edges, center, relation in body:
            graph = DiGraph._build_unchecked(nodes, edges)
            sim = {u: set(members) for u, members in relation}
            partial.append(PerfectSubgraph(graph, MatchRelation(sim), center))
    except (ValueError, TypeError, KeyError) as exc:
        raise WireFormatError(f"malformed partial-result body: {exc}") from exc
    return partial


# ======================================================================
# Cached distributed run reports
# ======================================================================
def encode_run_report(
    result_entries: Sequence[tuple],
    per_site: Dict[int, int],
    query_log: Sequence[Tuple[int, int, str, int]],
) -> tuple:
    """The distributed result cache's payload: one full run observation.

    ``result_entries`` is the canonical-position encoding of the
    deduplicated result set (built by the service layer's encoders, so
    an entry replays under any isomorphic pattern's node names);
    ``per_site`` the pre-dedup per-site subgraph counts; ``query_log``
    the query's own ``(sender, receiver, kind, units)`` bus charges.
    Together they reproduce a ``DistributedRunReport`` observation
    byte-identically without touching a worker.
    """
    body = (
        tuple(result_entries),
        tuple(sorted(per_site.items())),
        tuple(tuple(entry) for entry in query_log),
    )
    return _stamp(KIND_RUN_REPORT, body)


def decode_run_report(
    wire: object,
) -> Tuple[tuple, Dict[int, int], List[Tuple[int, int, str, int]]]:
    """Rebuild ``(result entries, per-site counts, query log)``."""
    body = _unstamp(KIND_RUN_REPORT, wire)
    if len(body) != 3:
        raise WireFormatError("malformed run-report body")
    entries, per_site_items, log_entries = body
    per_site: Dict[int, int] = {}
    try:
        for site, count in per_site_items:
            per_site[site] = count
    except (ValueError, TypeError) as exc:
        raise WireFormatError(
            f"malformed run-report per-site counts: {exc}"
        ) from exc
    log: List[Tuple[int, int, str, int]] = []
    for entry in log_entries:
        if not isinstance(entry, tuple) or len(entry) != 4:
            raise WireFormatError("malformed run-report query-log entry")
        log.append(entry)
    return entries, per_site, log


# ======================================================================
# Per-site bus accounting
# ======================================================================
def encode_bus_log(log: Sequence[Tuple[int, int, str, int]]) -> tuple:
    """The ``(sender, receiver, kind, units)`` charges a worker accrued."""
    return _stamp(KIND_BUS_LOG, tuple(tuple(entry) for entry in log))


def decode_bus_log(wire: object) -> List[Tuple[int, int, str, int]]:
    """Rebuild a bus log in charge order."""
    body = _unstamp(KIND_BUS_LOG, wire)
    log = []
    for entry in body:
        if not isinstance(entry, tuple) or len(entry) != 4:
            raise WireFormatError("malformed bus-log entry")
        log.append(entry)
    return log


# ======================================================================
# Trace span subtrees (the merged distributed trace)
# ======================================================================
def _span_body(span_obj: Span) -> tuple:
    return (
        span_obj.name,
        span_obj.start,
        span_obj.end,
        tuple(span_obj.attrs.items()),
        tuple(_span_body(child) for child in span_obj.children),
    )


def _span_from_body(entry: object) -> Span:
    try:
        name, start, end, attrs, children = entry
        rebuilt = Span(name)
        rebuilt.start = start
        rebuilt.end = end
        rebuilt.attrs = dict(attrs)
        rebuilt.children = [_span_from_body(child) for child in children]
    except (ValueError, TypeError) as exc:
        raise WireFormatError(f"malformed span entry: {exc}") from exc
    return rebuilt


def encode_span(span_obj: "Span | None") -> tuple:
    """A worker's traced ``site.evaluate`` subtree — or its absence.

    The body is a 0- or 1-entry tuple so "tracing was off for this
    query" ships as an explicit empty frame rather than an out-of-band
    ``None``; timings stay in the worker's own monotonic clock (only
    durations are meaningful coordinator-side).
    """
    if span_obj is None:
        return _stamp(KIND_SPAN, ())
    return _stamp(KIND_SPAN, (_span_body(span_obj),))


def decode_span(wire: object) -> "Span | None":
    """Rebuild a shipped span subtree (``None`` for the empty frame)."""
    body = _unstamp(KIND_SPAN, wire)
    if not body:
        return None
    if len(body) != 1:
        raise WireFormatError("malformed span body: expected one root")
    return _span_from_body(body[0])


# ======================================================================
# Metrics snapshots
# ======================================================================
def encode_metrics(snapshot: Dict[str, object]) -> tuple:
    """A registry snapshot in wire form (sorted, all-tuple body)."""
    try:
        body = (
            snapshot.get("schema_version", METRICS_SCHEMA_VERSION),
            tuple(sorted(snapshot.get("counters", {}).items())),
            tuple(sorted(snapshot.get("gauges", {}).items())),
            tuple(
                sorted(
                    (key, tuple(data["counts"]), data["sum"], data["count"])
                    for key, data in snapshot.get("histograms", {}).items()
                )
            ),
        )
    except (AttributeError, KeyError, TypeError) as exc:
        raise WireFormatError(f"malformed metrics snapshot: {exc}") from exc
    return _stamp(KIND_METRICS, body)


def decode_metrics(wire: object) -> Dict[str, object]:
    """Rebuild a snapshot dict (mergeable via ``merge_snapshots``)."""
    body = _unstamp(KIND_METRICS, wire)
    if len(body) != 4:
        raise WireFormatError("malformed metrics body")
    version, counters, gauges, histograms = body
    if version != METRICS_SCHEMA_VERSION:
        raise WireFormatError(
            f"metrics schema {version!r} is not the supported "
            f"{METRICS_SCHEMA_VERSION}"
        )
    try:
        return {
            "schema_version": version,
            "counters": dict(counters),
            "gauges": dict(gauges),
            "histograms": {
                key: {"counts": list(counts), "sum": total, "count": count}
                for key, counts, total, count in histograms
            },
        }
    except (ValueError, TypeError) as exc:
        raise WireFormatError(f"malformed metrics body: {exc}") from exc
