"""Per-site CSR execution substrate for the distributed protocol.

PR 1 gave the centralized entry points a compiled execution kernel
(:mod:`repro.core.kernel`), but the distributed workers kept the slow
reference path: every ball rebuilt a hash-set ``DiGraph`` and re-ran the
set-based dual-simulation fixpoint, so the Section 4.3 protocol never saw
the 2–5x kernel win.  This module closes that gap with the same pattern
MADlib uses for in-database analytics: the compiled kernel is pushed down
to each data-parallel site instead of shipping rows to a central
evaluator.

:class:`SiteGraphIndex` is the per-site analogue of
:class:`~repro.core.kernel.GraphIndex`, built on the same shared
growable-CSR substrate (:class:`~repro.core.kernel.GrowableCSRIndex` —
integer node ids, per-node forward / reverse / undirected rows, stable
ids under extension) with three distributed-specific twists:

* **Incremental extension.**  A fragment only knows its own nodes' full
  adjacency; remote neighbors start as unmaterialized *stubs* (an id with
  no label and empty rows).  When a ball BFS reaches a stub, the worker
  fetches the node record over the message bus (charging it exactly as
  the reference path does) and the record is appended to the index in
  place — ids are stable, so previously compiled rows stay valid.

* **Per-query remote reset.**  The owned part of the index is compiled
  once per site and reused across queries ("fragments compile once per
  site"); the remote extension is reverted to stubs at the start of each
  query (:meth:`SiteGraphIndex.reset_remote`) so fetch accounting per
  query is identical to the reference path, which re-ships records after
  the coordinator clears the per-query cache.

* **Owned-delta maintenance.**  The mutation pipeline
  (``Cluster.apply_update`` →
  :meth:`~repro.distributed.worker.SiteWorker.apply_update`) patches the
  *owned* rows in place through the growable-CSR helpers — new owned
  nodes append a slot, owned edge endpoints patch their own rows, owned
  removals tombstone — so per-site indexes stay warm across updates
  instead of recompiling per query.  Stub rows are never patched: a
  stub's adjacency is materialized wholesale from the owner's (already
  updated) fragment on the next fetch.

The per-ball matching itself (:func:`site_match_ball`) reuses the
kernel's compiled-pattern representation and counter-based fixpoint
(:func:`~repro.core.kernel._dual_sim_eager`) unchanged: candidate sets
hold integer ids, ball membership is implicit in the seeds, and only
successful balls pay for object-graph materialization.  The fixpoint and
extraction never read the adjacency row of a non-candidate node, so
unmaterialized stubs outside the ball are never touched.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.digraph import Label, Node
from repro.core.kernel import (
    GrowableCSRIndex,
    _CompiledPattern,
    _dual_sim_eager,
    _extract_perfect_subgraph,
)
from repro.core.npkernel import dual_fixpoint_id_sets
from repro.core.result import PerfectSubgraph
from repro.distributed.fragment import Fragment

#: ``label, successors, predecessors`` — the record served for one node.
NodeRecord = Tuple[Label, Set[Node], Set[Node]]

#: Fetches the records of a batch of nodes (same order), charging the
#: message bus one ``fetch`` message per record.  Batching lets the ball
#: BFS request a whole layer's missing records in one transport round
#: trip — essential for the process backend, where each round trip is a
#: pipe crossing — without changing the per-record accounting.
FetchManyFn = Callable[[List[Node]], List[NodeRecord]]


class SiteGraphIndex(GrowableCSRIndex):
    """One site's fragment compiled to integer ids + growable CSR rows.

    Owned nodes are interned first, in fragment insertion order (which is
    data-graph node order restricted to the site, so per-site center
    iteration matches the reference path); their ids are collected in
    :attr:`owned_ids`.  Remote nodes are interned on first sight; a
    remote id is *materialized* once its record has been fetched and its
    label and adjacency rows filled in.

    The row layout is inherited from
    :class:`~repro.core.kernel.GrowableCSRIndex` — the same layout
    :class:`~repro.core.kernel.GraphIndex` uses — so the kernel's
    fixpoint and extraction helpers run on either index unchanged.
    """

    __slots__ = ("materialized", "is_owned", "owned_ids", "_remote_live")

    def __init__(self, fragment: Fragment) -> None:
        super().__init__()
        self.materialized: List[bool] = []
        self.is_owned: List[bool] = []
        # Insertion-ordered dict used as an ordered set: iteration is
        # fragment insertion order (center order of the reference path),
        # membership removal is O(1) even mid-stream.
        self.owned_ids: Dict[int, None] = {}
        self._remote_live = 0  # currently materialized remote nodes
        # Intern every owned node first so owned ids enumerate in
        # fragment insertion order.
        for node in fragment.labels:
            i = self._intern(node)
            self.is_owned[i] = True
            self.owned_ids[i] = None
        labels = fragment.labels
        succ = fragment.succ
        pred = fragment.pred
        for node, i in list(self.index_of.items()):
            self._fill(i, labels[node], succ[node], pred[node])

    @property
    def num_owned(self) -> int:
        """Number of (live) owned nodes."""
        return len(self.owned_ids)

    # ------------------------------------------------------------------
    def _intern(self, node: Node) -> int:
        """The id of ``node``, assigning a fresh stub id on first sight."""
        i = self.index_of.get(node)
        if i is None:
            i = self._new_slot(node)
            self.materialized.append(False)
            self.is_owned.append(False)
        return i

    def _fill(
        self, i: int, label: Label, succ: Set[Node], pred: Set[Node]
    ) -> None:
        """Materialize id ``i`` from its full (global) adjacency."""
        intern = self._intern
        fwd = [intern(target) for target in succ]
        und = fwd.copy()
        und.extend(intern(source) for source in pred if source not in succ)
        self.fwd_rows[i] = fwd
        self.rev_rows[i] = [intern(source) for source in pred]
        self.und_rows[i] = und
        self.labels[i] = label
        self.materialized[i] = True
        self._np_view = None

    def materialize(self, i: int, record: NodeRecord) -> None:
        """Extend the index with a fetched remote node record."""
        label, succ, pred = record
        self._fill(i, label, succ, pred)
        self._remote_live += 1

    def reset_remote(self) -> None:
        """Revert every remote node to an unmaterialized stub.

        Called at the start of each query (via the worker's per-query
        cache clear) and before applying an update, so remote records are
        re-fetched — and re-charged — exactly like the reference path.
        Ids are stable across resets: owned rows keep referencing the
        stubbed ids, which simply get refilled on the next fetch.  O(1)
        when no remote is materialized, so a burst of updates between
        queries pays the slot scan at most once.
        """
        if not self._remote_live:
            return
        is_owned = self.is_owned
        materialized = self.materialized
        for i in range(len(self.nodes)):
            if materialized[i] and not is_owned[i]:
                self.labels[i] = None
                self.materialized[i] = False
                self.fwd_rows[i] = []
                self.rev_rows[i] = []
                self.und_rows[i] = []
        self._remote_live = 0
        self._np_view = None

    # ------------------------------------------------------------------
    # Owned-delta maintenance (the per-site half of the mutation pipeline)
    # ------------------------------------------------------------------
    def add_owned_node(self, node: Node, label: Label) -> None:
        """Append a slot for a newly owned (isolated) node."""
        i = self._intern(node)
        self.is_owned[i] = True
        self.materialized[i] = True
        self.labels[i] = label
        self.owned_ids[i] = None
        self._np_view = None

    def remove_owned_node(self, node: Node) -> None:
        """Tombstone an owned node whose incident edges are already gone."""
        i = self.index_of.pop(node)
        del self.owned_ids[i]
        self.is_owned[i] = False
        self.materialized[i] = False
        self.labels[i] = None
        self.nodes[i] = None
        self.fwd_rows[i] = []
        self.rev_rows[i] = []
        self.und_rows[i] = []
        self._np_view = None

    def relabel_owned_node(self, node: Node, label: Label) -> None:
        """Update the stored label of an owned node."""
        self.labels[self.index_of[node]] = label
        self._np_view = None

    def add_owned_edge(
        self, source: Node, target: Node, owns_source: bool, owns_target: bool
    ) -> None:
        """Patch the *owned* endpoints' rows for a new edge.

        Stub (remote) rows are never patched — their adjacency is always
        materialized wholesale from the owner's fragment on fetch — so
        each side updates only the rows it owns.  The undirected appends
        are membership-guarded: already present exactly when the reverse
        edge existed (or for the second half of a self-loop).
        """
        s = self._intern(source)
        t = self._intern(target)
        if owns_source:
            self.fwd_rows[s].append(t)
            und_s = self.und_rows[s]
            if t not in und_s:
                und_s.append(t)
        if owns_target:
            self.rev_rows[t].append(s)
            und_t = self.und_rows[t]
            if s not in und_t:
                und_t.append(s)
        self._np_view = None

    def remove_owned_edge(
        self,
        source: Node,
        target: Node,
        owns_source: bool,
        owns_target: bool,
        reverse_exists: bool,
    ) -> None:
        """Patch the *owned* endpoints' rows for a removed edge.

        ``reverse_exists`` — whether the opposite edge ``target ->
        source`` still exists (the worker answers this from its fragment
        adjacency) — decides whether the undirected link survives.  The
        undirected removals are membership-guarded so a both-endpoints-
        owned self-loop removes its single entry exactly once.
        """
        s = self.index_of[source]
        t = self.index_of[target]
        if owns_source:
            self.fwd_rows[s].remove(t)
            if not reverse_exists:
                und_s = self.und_rows[s]
                if t in und_s:
                    und_s.remove(t)
        if owns_target:
            self.rev_rows[t].remove(s)
            if not reverse_exists:
                und_t = self.und_rows[t]
                if s in und_t:
                    und_t.remove(s)
        self._np_view = None

    def __repr__(self) -> str:
        return (
            f"SiteGraphIndex(owned={self.num_owned}, "
            f"interned={len(self.nodes)}, "
            f"materialized={sum(self.materialized)})"
        )


def site_ball_bfs(
    index: SiteGraphIndex,
    fetch_many: FetchManyFn,
    center: int,
    radius: int,
) -> Tuple[List[int], int]:
    """Bounded undirected BFS over the site index, fetching across cuts.

    Identical ball membership to the reference
    :meth:`~repro.distributed.worker.SiteWorker.build_ball`: every ball
    node — including the border layer — is materialized, because the
    induced ball subgraph needs border-to-border edges and the reference
    path likewise ships the record of every ball member.  Each layer's
    unmaterialized stubs are fetched in **one** ``fetch_many`` call
    (one transport round trip on the process backend) and charged one
    bus message per record, in discovery order — the same records, the
    same charges, the same totals as fetching one at a time (the
    worker's per-query cache keeps repeat visits free, preserving the
    Section 4.3 shipment bound).

    Returns ``(order, epoch)``: ball node ids in BFS order (center
    first) and the epoch under which the calling thread's stamp buffer
    marks membership (per-thread, so parallel site evaluation is safe —
    each site owns its index, and the visited buffer is thread-local).
    """
    visit = index.visit_state()
    epoch = visit.new_epoch()
    stamp = visit.stamp
    materialized = index.materialized
    nodes = index.nodes
    rows = index.und_rows
    # Materializing a stub can intern *new* stub slots (the fetched
    # record's neighbors), growing the index mid-BFS; the thread-local
    # stamp buffer must keep covering every slot before its id is read.
    def grow_stamp() -> None:
        shortfall = len(nodes) - len(stamp)
        if shortfall > 0:
            stamp.extend([0] * shortfall)

    def materialize_batch(ids: List[int]) -> None:
        records = fetch_many([nodes[i] for i in ids])
        for i, record in zip(ids, records):
            index.materialize(i, record)
        grow_stamp()

    if not materialized[center]:
        materialize_batch([center])
    stamp[center] = epoch
    order = [center]
    frontier = [center]
    depth = 0
    while frontier and depth < radius:
        nxt: List[int] = []
        missing: List[int] = []
        for v in frontier:
            for w in rows[v]:
                if stamp[w] != epoch:
                    stamp[w] = epoch
                    if not materialized[w]:
                        missing.append(w)
                    nxt.append(w)
        if missing:
            # Rows of this layer's nodes are only read on the *next*
            # layer, so deferring materialization to one batch per layer
            # observes identically to the one-at-a-time original.
            materialize_batch(missing)
        order.extend(nxt)
        frontier = nxt
        depth += 1
    return order, epoch


def site_match_ball(
    cp: _CompiledPattern,
    index: SiteGraphIndex,
    fetch_many: FetchManyFn,
    center: int,
    radius: int,
) -> Optional[PerfectSubgraph]:
    """One ball of the per-site ``Match`` loop on the kernel substrate.

    Mirrors the reference worker's ``build_ball`` + ``dual_simulation``
    + ``extract_max_perfect_subgraph`` sequence: label-compatible seeds
    restricted to the ball, the counter fixpoint, then extraction.  No
    cross-ball dedup happens here — the reference path ships every
    discovered subgraph and lets the coordinator dedup, and the per-site
    partial counts are part of the observable protocol output.
    """
    order, _ = site_ball_bfs(index, fetch_many, center, radius)
    by_label = cp.by_label
    labels = index.labels
    sim: List[Set[int]] = [set() for _ in range(cp.size)]
    for v in order:
        for u in by_label.get(labels[v], ()):
            sim[u].add(v)
    if not all(sim):
        return None
    if not _dual_sim_eager(cp, index, sim):
        return None
    return _extract_perfect_subgraph(cp, index, center, sim)


def site_match_ball_numpy(
    cp: _CompiledPattern,
    index: SiteGraphIndex,
    fetch_many: FetchManyFn,
    center: int,
    radius: int,
) -> Optional[PerfectSubgraph]:
    """:func:`site_match_ball` with the fixpoint run as array rounds.

    The ball walk is the shared :func:`site_ball_bfs` — the same fetch
    batches, the same per-record bus charges, so the protocol observation
    is identical to the kernel path by construction.  Only the per-ball
    dual-simulation fixpoint differs: the id-set seeds are handed to the
    vectorized :func:`repro.core.npkernel.dual_fixpoint_id_sets`, which
    computes the same unique maximum relation.
    """
    order, _ = site_ball_bfs(index, fetch_many, center, radius)
    by_label = cp.by_label
    labels = index.labels
    sim: List[Set[int]] = [set() for _ in range(cp.size)]
    for v in order:
        for u in by_label.get(labels[v], ()):
            sim[u].add(v)
    if not all(sim):
        return None
    refined = dual_fixpoint_id_sets(index, cp, sim)
    if refined is None:
        return None
    return _extract_perfect_subgraph(cp, index, center, refined)
