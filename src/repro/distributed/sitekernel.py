"""Per-site CSR execution substrate for the distributed protocol.

PR 1 gave the centralized entry points a compiled execution kernel
(:mod:`repro.core.kernel`), but the distributed workers kept the slow
reference path: every ball rebuilt a hash-set ``DiGraph`` and re-ran the
set-based dual-simulation fixpoint, so the Section 4.3 protocol never saw
the 2–5x kernel win.  This module closes that gap with the same pattern
MADlib uses for in-database analytics: the compiled kernel is pushed down
to each data-parallel site instead of shipping rows to a central
evaluator.

:class:`SiteGraphIndex` is the per-site analogue of
:class:`~repro.core.kernel.GraphIndex` — integer node ids plus CSR
adjacency rows — with two distributed-specific twists:

* **Incremental extension.**  A fragment only knows its own nodes' full
  adjacency; remote neighbors start as unmaterialized *stubs* (an id with
  no label and empty rows).  When a ball BFS reaches a stub, the worker
  fetches the node record over the message bus (charging it exactly as
  the reference path does) and the record is appended to the index in
  place — ids are stable, so previously compiled rows stay valid.

* **Per-query remote reset.**  The owned part of the index is compiled
  once per site and reused across queries ("fragments compile once per
  site"); the remote extension is reverted to stubs at the start of each
  query (:meth:`SiteGraphIndex.reset_remote`) so fetch accounting per
  query is identical to the reference path, which re-ships records after
  the coordinator clears the per-query cache.

The per-ball matching itself (:func:`site_match_ball`) reuses the
kernel's compiled-pattern representation and counter-based fixpoint
(:func:`~repro.core.kernel._dual_sim_eager`) unchanged: candidate sets
hold integer ids, ball membership is implicit in the seeds, and only
successful balls pay for object-graph materialization.  The fixpoint and
extraction never read the adjacency row of a non-candidate node, so
unmaterialized stubs outside the ball are never touched.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.digraph import Label, Node
from repro.core.kernel import (
    _CompiledPattern,
    _dual_sim_eager,
    _extract_perfect_subgraph,
)
from repro.core.result import PerfectSubgraph
from repro.distributed.fragment import Fragment

#: ``label, successors, predecessors`` — the record served for one node.
NodeRecord = Tuple[Label, Set[Node], Set[Node]]

#: Fetches the record of a (remote) node, charging the message bus.
FetchFn = Callable[[Node], NodeRecord]


class SiteGraphIndex:
    """One site's fragment compiled to integer ids + growable CSR rows.

    Ids ``[0, num_owned)`` are the fragment's own nodes in fragment
    insertion order (which is data-graph node order restricted to the
    site, so per-site center iteration matches the reference path).
    Higher ids are remote nodes, interned on first sight; a remote id is
    *materialized* once its record has been fetched and its label and
    adjacency rows filled in.

    The row layout (``fwd_rows`` / ``rev_rows`` / ``und_rows`` indexed by
    node id, plus ``nodes`` / ``labels`` / ``_stamp``) deliberately
    mirrors :class:`~repro.core.kernel.GraphIndex`, so the kernel's
    fixpoint and extraction helpers run on either index unchanged.
    """

    __slots__ = (
        "nodes",
        "index_of",
        "labels",
        "materialized",
        "fwd_rows",
        "rev_rows",
        "und_rows",
        "num_owned",
        "_stamp",
        "_epoch",
    )

    def __init__(self, fragment: Fragment) -> None:
        self.nodes: List[Node] = []
        self.index_of: Dict[Node, int] = {}
        self.labels: List[Optional[Label]] = []
        self.materialized: List[bool] = []
        self.fwd_rows: List[List[int]] = []
        self.rev_rows: List[List[int]] = []
        self.und_rows: List[List[int]] = []
        self._stamp: List[int] = []
        self._epoch = 0
        # Intern every owned node first so ids [0, num_owned) are owned
        # and site ball centers enumerate as range(num_owned).
        for node in fragment.labels:
            self._intern(node)
        self.num_owned = len(self.nodes)
        labels = fragment.labels
        succ = fragment.succ
        pred = fragment.pred
        for node, i in list(self.index_of.items()):
            self._fill(i, labels[node], succ[node], pred[node])

    # ------------------------------------------------------------------
    def _intern(self, node: Node) -> int:
        """The id of ``node``, assigning a fresh stub id on first sight."""
        i = self.index_of.get(node)
        if i is None:
            i = len(self.nodes)
            self.index_of[node] = i
            self.nodes.append(node)
            self.labels.append(None)
            self.materialized.append(False)
            self.fwd_rows.append([])
            self.rev_rows.append([])
            self.und_rows.append([])
            self._stamp.append(0)
        return i

    def _fill(
        self, i: int, label: Label, succ: Set[Node], pred: Set[Node]
    ) -> None:
        """Materialize id ``i`` from its full (global) adjacency."""
        intern = self._intern
        fwd = [intern(target) for target in succ]
        und = fwd.copy()
        und.extend(intern(source) for source in pred if source not in succ)
        self.fwd_rows[i] = fwd
        self.rev_rows[i] = [intern(source) for source in pred]
        self.und_rows[i] = und
        self.labels[i] = label
        self.materialized[i] = True

    def materialize(self, i: int, record: NodeRecord) -> None:
        """Extend the index with a fetched remote node record."""
        label, succ, pred = record
        self._fill(i, label, succ, pred)

    def reset_remote(self) -> None:
        """Revert every remote node to an unmaterialized stub.

        Called at the start of each query (via the worker's per-query
        cache clear) so remote records are re-fetched — and re-charged —
        exactly like the reference path.  Ids are stable across resets:
        owned rows keep referencing the stubbed ids, which simply get
        refilled on the next fetch.
        """
        for i in range(self.num_owned, len(self.nodes)):
            self.labels[i] = None
            self.materialized[i] = False
            self.fwd_rows[i] = []
            self.rev_rows[i] = []
            self.und_rows[i] = []

    def new_epoch(self) -> int:
        """Invalidate the visited-stamp buffer in O(1)."""
        self._epoch += 1
        return self._epoch

    def __repr__(self) -> str:
        return (
            f"SiteGraphIndex(owned={self.num_owned}, "
            f"interned={len(self.nodes)}, "
            f"materialized={sum(self.materialized)})"
        )


def site_ball_bfs(
    index: SiteGraphIndex,
    fetch: FetchFn,
    center: int,
    radius: int,
) -> Tuple[List[int], int]:
    """Bounded undirected BFS over the site index, fetching across cuts.

    Identical ball membership to the reference
    :meth:`~repro.distributed.worker.SiteWorker.build_ball`: every ball
    node — including the border layer — is materialized, because the
    induced ball subgraph needs border-to-border edges and the reference
    path likewise ships the record of every ball member.  ``fetch`` is
    charged once per newly materialized remote node (the worker's
    per-query cache keeps repeat visits free, preserving the Section 4.3
    shipment bound).

    Returns ``(order, epoch)``: ball node ids in BFS order (center
    first) and the epoch under which ``index._stamp[v] == epoch`` marks
    membership.
    """
    epoch = index.new_epoch()
    stamp = index._stamp
    materialized = index.materialized
    nodes = index.nodes
    rows = index.und_rows
    if not materialized[center]:
        index.materialize(center, fetch(nodes[center]))
    stamp[center] = epoch
    order = [center]
    frontier = [center]
    depth = 0
    while frontier and depth < radius:
        nxt: List[int] = []
        for v in frontier:
            for w in rows[v]:
                if stamp[w] != epoch:
                    stamp[w] = epoch
                    if not materialized[w]:
                        index.materialize(w, fetch(nodes[w]))
                    nxt.append(w)
        order.extend(nxt)
        frontier = nxt
        depth += 1
    return order, epoch


def site_match_ball(
    cp: _CompiledPattern,
    index: SiteGraphIndex,
    fetch: FetchFn,
    center: int,
    radius: int,
) -> Optional[PerfectSubgraph]:
    """One ball of the per-site ``Match`` loop on the kernel substrate.

    Mirrors the reference worker's ``build_ball`` + ``dual_simulation``
    + ``extract_max_perfect_subgraph`` sequence: label-compatible seeds
    restricted to the ball, the counter fixpoint, then extraction.  No
    cross-ball dedup happens here — the reference path ships every
    discovered subgraph and lets the coordinator dedup, and the per-site
    partial counts are part of the observable protocol output.
    """
    order, _ = site_ball_bfs(index, fetch, center, radius)
    by_label = cp.by_label
    labels = index.labels
    sim: List[Set[int]] = [set() for _ in range(cp.size)]
    for v in order:
        for u in by_label.get(labels[v], ()):
            sim[u].add(v)
    if not all(sim):
        return None
    if not _dual_sim_eager(cp, index, sim):
        return None
    return _extract_perfect_subgraph(cp, index, center, sim)
