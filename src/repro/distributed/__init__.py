"""Distributed strong simulation (Section 4.3) over a simulated cluster.

The protocol runs on either execution engine
(``engine="auto"|"kernel"|"python"`` on :class:`Cluster` and
:func:`distributed_match`): the kernel engine compiles each fragment once
per site into an incrementally extended CSR index
(:mod:`repro.distributed.sitekernel`) and is several times faster; the
python engine is the readable reference path — the right choice when
debugging result or traffic differences against the paper's pseudocode.
Result sets, per-site counts and bus accounting are engine-identical.
"""

from repro.distributed.coordinator import (
    Cluster,
    DistributedRunReport,
    crossing_ball_bound,
    distributed_match,
)
from repro.distributed.fragment import Fragment, fragment_graph
from repro.distributed.network import Message, MessageBus
from repro.distributed.partition import (
    PARTITIONERS,
    bfs_partition,
    cut_edges,
    greedy_edge_cut_partition,
    hash_partition,
)
from repro.distributed.runtime import (
    BACKENDS,
    process_backend_available,
    resolve_backend,
)
from repro.distributed.sitekernel import SiteGraphIndex
from repro.distributed.worker import SiteWorker

__all__ = [
    "BACKENDS",
    "Cluster",
    "DistributedRunReport",
    "Fragment",
    "Message",
    "MessageBus",
    "PARTITIONERS",
    "SiteGraphIndex",
    "SiteWorker",
    "bfs_partition",
    "crossing_ball_bound",
    "cut_edges",
    "distributed_match",
    "fragment_graph",
    "greedy_edge_cut_partition",
    "hash_partition",
    "process_backend_available",
    "resolve_backend",
]
