"""Distributed strong simulation (Section 4.3) over a simulated cluster."""

from repro.distributed.coordinator import (
    Cluster,
    DistributedRunReport,
    crossing_ball_bound,
    distributed_match,
)
from repro.distributed.fragment import Fragment, fragment_graph
from repro.distributed.network import Message, MessageBus
from repro.distributed.partition import (
    bfs_partition,
    cut_edges,
    greedy_edge_cut_partition,
    hash_partition,
)
from repro.distributed.worker import SiteWorker

__all__ = [
    "Cluster",
    "DistributedRunReport",
    "Fragment",
    "Message",
    "MessageBus",
    "SiteWorker",
    "bfs_partition",
    "crossing_ball_bound",
    "cut_edges",
    "distributed_match",
    "fragment_graph",
    "greedy_edge_cut_partition",
    "hash_partition",
]
