"""Graph partitioners for the distributed runtime.

The paper's distributed algorithm (Section 4.3) is explicitly *generic*:
"it is applicable to any G regardless of how G is partitioned and
distributed".  The runtime therefore takes a plain ``node -> site``
assignment; this module provides three ways to produce one:

* :func:`hash_partition` — stateless hashing, the worst case for locality
  (many cut edges), useful as the adversarial baseline;
* :func:`bfs_partition` — contiguous BFS chunks, a cheap locality-aware
  heuristic approximating how real datasets are sharded;
* :func:`greedy_edge_cut_partition` — a simple LDG-style greedy streaming
  partitioner balancing size against cut edges.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.core.digraph import DiGraph, Node
from repro.exceptions import DistributedError

Assignment = Dict[Node, int]


def _check_sites(num_sites: int) -> None:
    if num_sites <= 0:
        raise DistributedError(f"num_sites must be positive, got {num_sites}")


def hash_partition(graph: DiGraph, num_sites: int) -> Assignment:
    """Assign each node to ``hash(node) % num_sites``-like buckets.

    Uses a deterministic string hash (not Python's randomized ``hash``)
    so partitions are stable across processes.
    """
    _check_sites(num_sites)
    assignment: Assignment = {}
    for node in graph.nodes():
        digest = 0
        for char in repr(node):
            digest = (digest * 131 + ord(char)) % 1000000007
        assignment[node] = digest % num_sites
    return assignment


def bfs_partition(graph: DiGraph, num_sites: int) -> Assignment:
    """Contiguous chunks of an undirected BFS ordering.

    Produces balanced sites whose nodes are topologically close, so most
    balls stay within one fragment — the favourable case for the locality
    bound of Section 4.3.
    """
    _check_sites(num_sites)
    order: List[Node] = []
    seen: Set[Node] = set()
    for root in graph.nodes():
        if root in seen:
            continue
        queue = [root]
        seen.add(root)
        while queue:
            node = queue.pop(0)
            order.append(node)
            for neighbor in sorted(graph.neighbors(node), key=repr):
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
    chunk = max(1, (len(order) + num_sites - 1) // num_sites)
    return {
        node: min(index // chunk, num_sites - 1)
        for index, node in enumerate(order)
    }


def greedy_edge_cut_partition(graph: DiGraph, num_sites: int) -> Assignment:
    """Linear Deterministic Greedy streaming partitioning.

    Each node (in BFS order) goes to the site holding most of its already
    placed neighbors, weighted by remaining capacity — the standard LDG
    heuristic, giving fewer cut edges than hashing at equal balance.
    """
    _check_sites(num_sites)
    capacity = max(1, (graph.num_nodes + num_sites - 1) // num_sites)
    loads = [0] * num_sites
    assignment: Assignment = {}

    # Stream in BFS order for locality in the arrival sequence.
    ordering = list(bfs_partition(graph, 1))
    for node in ordering:
        scores: List[float] = []
        neighbor_sites = [
            assignment[n] for n in graph.neighbors(node) if n in assignment
        ]
        for site in range(num_sites):
            affinity = sum(1 for s in neighbor_sites if s == site)
            penalty = 1.0 - loads[site] / capacity
            scores.append(affinity * penalty if penalty > 0 else -1.0)
        best_site = max(range(num_sites), key=lambda s: (scores[s], -loads[s]))
        assignment[node] = best_site
        loads[best_site] += 1
    return assignment


def cut_edges(graph: DiGraph, assignment: Assignment) -> int:
    """Number of edges whose endpoints live on different sites."""
    return sum(
        1
        for source, target in graph.edges()
        if assignment[source] != assignment[target]
    )


#: Canonical name -> partitioner registry (the CLI's ``--partitioner``
#: choices and the differential tests both derive from this, so adding a
#: partitioner here propagates everywhere).
PARTITIONERS = {
    "hash": hash_partition,
    "bfs": bfs_partition,
    "greedy": greedy_edge_cut_partition,
}
