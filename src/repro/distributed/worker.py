"""Site workers: per-fragment ball construction and matching.

Each worker owns a :class:`~repro.distributed.fragment.Fragment` and can
evaluate the per-ball part of algorithm ``Match`` for every ball centered
at one of its own nodes.  When a ball's BFS crosses the fragment boundary,
the worker *fetches* the remote node records (label + adjacency) from the
owning site through the message bus — the accounted data shipment.  A
per-worker cache ensures each remote record is shipped at most once per
query, so the total shipment is bounded by the union of the
boundary-crossing balls, which is the Section 4.3 bound.

Like the centralized entry points, a worker runs on one of the execution
engines (``engine="auto"|"kernel"|"numpy"|"python"``):

* ``"python"`` — the reference path: every ball rebuilds a hash-set
  ``DiGraph`` and runs the set-based dual-simulation fixpoint.  Readable,
  mirrors the paper's pseudocode; the right choice when debugging result
  or traffic differences.
* ``"kernel"`` (and the ``"auto"`` default) — the fragment is compiled
  once per site into a :class:`~repro.distributed.sitekernel.SiteGraphIndex`
  (integer ids + CSR rows) that is *extended incrementally* as remote
  node records arrive over the bus; balls and fixpoints then run over
  flat integer arrays exactly as in :mod:`repro.core.kernel`.
* ``"numpy"`` — the same site index and the same ball walk, but the
  per-ball fixpoint runs as vectorized array rounds
  (:mod:`repro.core.npkernel`).  ``"auto"`` never resolves here at a
  site (workers see no whole-graph handle to size against); ask for it
  explicitly.

All engines fetch exactly the records of the remote ball members, so the
message sequence, the per-link unit totals and the Section 4.3 data-
shipment bound are engine-independent (enforced by
``tests/test_distributed_kernel_equivalence.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.ball import Ball
from repro.core.digraph import (
    ADD_EDGE,
    ADD_NODE,
    REMOVE_EDGE,
    REMOVE_NODE,
    RELABEL,
    DiGraph,
    GraphDelta,
    Node,
)
from repro.core.dualsim import dual_simulation
from repro.core.kernel import (
    _CompiledPattern,
    aggregate_index_stats,
    resolve_engine,
)
from repro.core.pattern import Pattern
from repro.core.result import PerfectSubgraph
from repro.core.strong import extract_max_perfect_subgraph
from repro.distributed.fragment import Fragment
from repro.distributed.network import MessageBus
from repro.distributed.sitekernel import (
    NodeRecord,
    SiteGraphIndex,
    site_match_ball,
    site_match_ball_numpy,
)
from repro.exceptions import DistributedError
from repro.obs.trace import capture as _obs_capture


class SiteWorker:
    """One site of the simulated cluster."""

    def __init__(
        self,
        fragment: Fragment,
        bus: MessageBus,
        engine: str = "auto",
    ) -> None:
        resolve_engine(engine)  # validate eagerly, before any query runs
        self.fragment = fragment
        self.bus = bus
        self.engine = engine
        self._peers: Dict[int, "SiteWorker"] = {}
        self._remote_cache: Dict[Node, NodeRecord] = {}
        self._site_index: Optional[SiteGraphIndex] = None
        #: How many times this worker compiled a fresh ``SiteGraphIndex``.
        #: A warm worker holds this at 1 across queries and updates — the
        #: observable "fragments compile once per site" guarantee, which
        #: the process runtime re-asserts per worker process.
        self.index_builds = 0
        #: Queries this worker evaluated (any engine).
        self.queries_served = 0
        #: Per-query fetch telemetry (reset with the remote cache):
        #: batched fetch calls, records shipped, bus units charged.
        self.fetch_round_trips = 0
        self.fetch_records = 0
        self.fetch_units = 0
        #: The traced ``site.evaluate`` subtree of the last query, when
        #: tracing was enabled during it (``None`` otherwise).  The
        #: coordinator grafts it under its ``distributed.run`` span.
        self.last_span = None

    # ------------------------------------------------------------------
    # Cluster wiring
    # ------------------------------------------------------------------
    def connect(self, peers: Dict[int, "SiteWorker"]) -> None:
        """Register the other sites (done once by the coordinator)."""
        self._peers = peers

    def serve_node(self, node: Node) -> NodeRecord:
        """Answer a fetch for an owned node: label plus full adjacency."""
        if not self.fragment.owns(node):
            raise DistributedError(
                f"site {self.fragment.site_id} does not own {node!r}"
            )
        return (
            self.fragment.labels[node],
            set(self.fragment.succ[node]),
            set(self.fragment.pred[node]),
        )

    # ------------------------------------------------------------------
    # Remote access with accounting
    # ------------------------------------------------------------------
    def _record_for(self, node: Node) -> NodeRecord:
        """The record of any node, fetching (and charging) if remote."""
        if self.fragment.owns(node):
            return (
                self.fragment.labels[node],
                self.fragment.succ[node],
                self.fragment.pred[node],
            )
        cached = self._remote_cache.get(node)
        if cached is not None:
            return cached
        self._fetch_missing([node])
        return self._remote_cache[node]

    def _owner_of(self, node: Node) -> int:
        owner = self.fragment.remote_owner.get(node)
        if owner is None:
            # A node two hops outside the fragment: route by asking the
            # peer that owns it, discovered through the global directory
            # the coordinator supplies (peers dict keyed by site).
            owner = self._locate_owner(node)
        return owner

    def _fetch_missing(self, nodes: List[Node]) -> None:
        """Fetch and charge the records of uncached remote ``nodes``.

        The accounting granularity is the *record*: one ``fetch`` bus
        message of ``1 + degree`` units per node, exactly as if each had
        been requested alone.  Batching exists so a transport can ship a
        whole BFS layer's requests in one round trip (the process
        backend overrides this method); the protocol observation is
        identical either way.
        """
        self.fetch_round_trips += 1
        self.fetch_records += len(nodes)
        for node in nodes:
            owner = self._owner_of(node)
            record = self._peers[owner].serve_node(node)
            # One unit for the node record + one per incident edge.
            units = 1 + len(record[1]) + len(record[2])
            self.bus.send(owner, self.fragment.site_id, "fetch", units)
            self.fetch_units += units
            self._remote_cache[node] = record

    def _ensure_records(self, nodes: List[Node]) -> None:
        """Make every node's record available locally (batch-fetching)."""
        owns = self.fragment.owns
        cache = self._remote_cache
        missing = [
            node for node in nodes if not owns(node) and node not in cache
        ]
        if missing:
            self._fetch_missing(missing)

    def _records_for_many(self, nodes: List[Node]) -> List[NodeRecord]:
        """The records of ``nodes``, fetched in one batch where remote."""
        self._ensure_records(nodes)
        record_for = self._record_for
        return [record_for(node) for node in nodes]

    def _locate_owner(self, node: Node) -> int:
        """Find the owner of a node not adjacent to this fragment."""
        for site, peer in self._peers.items():
            if peer.fragment.owns(node):
                return site
        raise DistributedError(f"no site owns node {node!r}")

    def clear_cache(self) -> None:
        """Drop fetched remote records (coordinator calls between queries).

        Also reverts the compiled site index's remote extension to stubs,
        so the next kernel-engine query re-fetches — and the bus
        re-charges — remote records exactly like the reference path.
        The owned part of the index survives: fragments compile once per
        site.
        """
        self._remote_cache.clear()
        self.fetch_round_trips = 0
        self.fetch_records = 0
        self.fetch_units = 0
        if self._site_index is not None:
            self._site_index.reset_remote()

    # ------------------------------------------------------------------
    # Mutation pipeline: owned-fragment delta application
    # ------------------------------------------------------------------
    def apply_update(self, delta: GraphDelta, owner_of) -> None:
        """Apply one owned-fragment delta to this site's state.

        The per-site half of ``Cluster.apply_update``: patches the
        fragment dictionaries (the source of truth both engines read) and
        — when a site index has been compiled — the index's *owned* CSR
        rows in place, keeping it warm instead of recompiling per query.
        ``owner_of`` maps any node to its owning site, for refreshing the
        ``remote_owner`` routing table when an edge reaches off-site.

        Remote records cached from the previous query are dropped first
        (they may describe pre-update adjacency); the next query
        re-fetches — and the bus re-charges — them exactly as it would
        have anyway after the coordinator's per-query cache clear.
        """
        self._remote_cache.clear()
        index = self._site_index
        if index is not None:
            index.reset_remote()
        fragment = self.fragment
        kind = delta.kind
        if kind == ADD_EDGE or kind == REMOVE_EDGE:
            source, target = delta.source, delta.target
            owns_source = fragment.owns(source)
            owns_target = fragment.owns(target)
            if not (owns_source or owns_target):
                raise DistributedError(
                    f"site {fragment.site_id} owns neither endpoint of "
                    f"({source!r}, {target!r})"
                )
            if kind == ADD_EDGE:
                if owns_source:
                    fragment.succ[source].add(target)
                    if not owns_target:
                        fragment.remote_owner[target] = owner_of[target]
                if owns_target:
                    fragment.pred[target].add(source)
                    if not owns_source:
                        fragment.remote_owner[source] = owner_of[source]
                if index is not None:
                    index.add_owned_edge(
                        source, target, owns_source, owns_target
                    )
            else:
                if owns_source:
                    fragment.succ[source].discard(target)
                if owns_target:
                    fragment.pred[target].discard(source)
                # Does the opposite edge target -> source survive?  An
                # owned endpoint knows: it sees all its incident edges.
                reverse_exists = (
                    (owns_target and source in fragment.succ[target])
                    or (owns_source and target in fragment.pred[source])
                )
                if index is not None:
                    index.remove_owned_edge(
                        source, target, owns_source, owns_target,
                        reverse_exists,
                    )
        elif kind == ADD_NODE:
            fragment.labels[delta.node] = delta.label
            fragment.succ[delta.node] = set()
            fragment.pred[delta.node] = set()
            fragment.remote_owner.pop(delta.node, None)
            if index is not None:
                index.add_owned_node(delta.node, delta.label)
        elif kind == REMOVE_NODE:
            # Incident-edge deltas were applied first (the pipeline
            # decomposes node removals), so the node is isolated here.
            del fragment.labels[delta.node]
            del fragment.succ[delta.node]
            del fragment.pred[delta.node]
            if index is not None:
                index.remove_owned_node(delta.node)
        elif kind == RELABEL:
            fragment.labels[delta.node] = delta.label
            if index is not None:
                index.relabel_owned_node(delta.node, delta.label)
        else:  # pragma: no cover - the kinds above are exhaustive
            raise DistributedError(f"unknown graph delta kind {kind!r}")

    def forget_remote(self, node: Node) -> None:
        """Drop a (cluster-wide removed) node from the routing table."""
        self.fragment.remote_owner.pop(node, None)
        self._remote_cache.pop(node, None)

    # ------------------------------------------------------------------
    # Distributed ball construction + matching
    # ------------------------------------------------------------------
    def site_index(self) -> SiteGraphIndex:
        """The site's compiled index, built on first (kernel) use."""
        index = self._site_index
        if index is None:
            index = SiteGraphIndex(self.fragment)
            self._site_index = index
            self.index_builds += 1
        return index

    def runtime_stats(self) -> Dict[str, object]:
        """Observability counters for this worker.

        The one stats shape every backend reports: the process runtime's
        ``stats`` command delegates here, so `Cluster.worker_stats()` is
        key-compatible wherever the workers live.  The ``reach_*``
        counters aggregate every centralized ``GraphIndex`` alive in this
        worker's *process* (distributed path matching is future work, so
        they count the co-resident centralized reach indexes — zero in a
        fresh worker process until something in it runs the bounded or
        regular matchers).
        """
        index_stats = aggregate_index_stats()
        return {
            "site": self.fragment.site_id,
            "index_builds": self.index_builds,
            "queries_served": self.queries_served,
            "owned_nodes": self.fragment.num_nodes,
            "reach_builds": index_stats.reach_builds,
            "reach_patches": index_stats.reach_patches,
            "reach_drops": index_stats.reach_drops,
            "reach_probes": index_stats.reach_probes,
        }

    def build_ball(self, center: Node, radius: int) -> Ball:
        """Undirected BFS to ``radius`` across fragment boundaries.

        Identical node/edge content to the centralized
        :func:`repro.core.ball.extract_ball`; remote hops are fetched and
        accounted — batched per BFS layer, so the process transport pays
        one round trip per layer while the bus still charges one message
        per shipped record (every ball member's record is fetched, as
        before; only the request grouping differs).
        """
        distances: Dict[Node, int] = {center: 0}
        frontier: List[Node] = [center]
        self._ensure_records(frontier)
        depth = 0
        while frontier and depth < radius:
            next_frontier: List[Node] = []
            for node in frontier:
                _, successors, predecessors = self._record_for(node)
                for neighbor in successors | predecessors:
                    if neighbor not in distances:
                        distances[neighbor] = depth + 1
                        next_frontier.append(neighbor)
            self._ensure_records(next_frontier)
            frontier = next_frontier
            depth += 1

        subgraph = DiGraph()
        node_set = set(distances)
        for node in node_set:
            label, _, _ = self._record_for(node)
            subgraph.add_node(node, label)
        for node in node_set:
            _, successors, _ = self._record_for(node)
            for target in successors:
                if target in node_set:
                    subgraph.add_edge(node, target)
        return Ball(subgraph, center, radius, distances)

    def match_local(
        self,
        pattern: Pattern,
        radius: Optional[int] = None,
        engine: Optional[str] = None,
    ) -> List[PerfectSubgraph]:
        """Run per-ball strong simulation for every owned center.

        Returns the site's partial result Θ_i (possibly containing
        subgraphs that other sites also discover; the coordinator dedups).
        ``engine`` overrides the worker default for this query only.
        """
        if radius is None:
            radius = pattern.diameter
        resolved = resolve_engine(self.engine if engine is None else engine)
        self.queries_served += 1
        with _obs_capture("site.evaluate") as _sp:
            if resolved == "kernel":
                partial = self._match_local_kernel(pattern, radius)
            elif resolved == "numpy":
                partial = self._match_local_numpy(pattern, radius)
            else:
                partial = self._match_local_python(pattern, radius)
            if _sp.enabled:
                _sp.set(
                    site=self.fragment.site_id,
                    engine=resolved,
                    partial=len(partial),
                    **{
                        "fetch.round_trips": self.fetch_round_trips,
                        "fetch.records": self.fetch_records,
                        "fetch.units": self.fetch_units,
                    },
                )
        self.last_span = _sp if _sp.enabled else None
        return partial

    def _match_local_python(
        self, pattern: Pattern, radius: int
    ) -> List[PerfectSubgraph]:
        """Reference path: per-ball ``DiGraph`` + set-based fixpoint."""
        partial: List[PerfectSubgraph] = []
        for center in self.fragment.labels:
            ball = self.build_ball(center, radius)
            relation = dual_simulation(pattern, ball.graph)
            if relation.is_empty():
                continue
            subgraph = extract_max_perfect_subgraph(pattern, ball, relation)
            if subgraph is not None:
                partial.append(subgraph)
        return partial

    def _match_local_kernel(
        self, pattern: Pattern, radius: int
    ) -> List[PerfectSubgraph]:
        """Kernel path: ball BFS + counter fixpoint over the site index.

        Centers iterate in the same fragment order as the reference path
        (owned ids are assigned in fragment insertion order), and no
        per-site dedup is applied, so the partial list — and with it the
        per-site counts and the ``result`` traffic — is engine-identical.
        """
        index = self.site_index()
        cp = _CompiledPattern(pattern)
        fetch_many = self._records_for_many
        partial: List[PerfectSubgraph] = []
        for center in index.owned_ids:
            subgraph = site_match_ball(cp, index, fetch_many, center, radius)
            if subgraph is not None:
                partial.append(subgraph)
        return partial

    def _match_local_numpy(
        self, pattern: Pattern, radius: int
    ) -> List[PerfectSubgraph]:
        """Numpy path: kernel's ball walk, vectorized per-ball fixpoint.

        Shares :func:`~repro.distributed.sitekernel.site_ball_bfs` with
        the kernel path, so fetches, charges and the partial list are all
        identical; only the fixpoint runs as array rounds.
        """
        index = self.site_index()
        cp = _CompiledPattern(pattern)
        fetch_many = self._records_for_many
        partial: List[PerfectSubgraph] = []
        for center in index.owned_ids:
            subgraph = site_match_ball_numpy(
                cp, index, fetch_many, center, radius
            )
            if subgraph is not None:
                partial.append(subgraph)
        return partial
