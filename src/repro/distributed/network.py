"""A simulated cluster message bus with traffic accounting.

The paper's distributed claim (Section 4.3) is quantitative: strong
simulation can be evaluated with total data shipment bounded by the balls
around nodes with cross-fragment neighbors.  To *measure* that, the
simulated bus charges every message with a size in ``units`` — one unit
per node record (id + label + adjacency stub) and one per edge shipped —
and keeps per-link counters, so benchmarks can report both message counts
and shipped volume, and tests can assert the bound.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass
class Message:
    """One message on the bus (metadata only; payloads stay in memory)."""

    sender: int
    receiver: int
    kind: str
    units: int


class MessageBus:
    """Counts messages and shipped units between sites.

    ``site -1`` denotes the coordinator.  The bus does not route payloads
    (workers are in-process); it exists purely to account traffic exactly
    where a real deployment would pay it.
    """

    def __init__(self) -> None:
        self.messages: List[Message] = []
        self._units_by_link: Dict[Tuple[int, int], int] = defaultdict(int)
        self._units_by_kind: Dict[str, int] = defaultdict(int)
        self._lock = threading.Lock()

    def send(self, sender: int, receiver: int, kind: str, units: int) -> None:
        """Record one message of ``units`` size on the (sender, receiver) link.

        Thread-safe: parallel site evaluation charges the bus from
        several worker threads at once.  The per-link and per-kind totals
        are deterministic either way (each worker's charges are), only
        the interleaving of ``messages`` varies — which no accounting
        observation depends on.
        """
        message = Message(sender, receiver, kind, units)
        with self._lock:
            self.messages.append(message)
            self._units_by_link[(sender, receiver)] += units
            self._units_by_kind[kind] += units

    @property
    def total_messages(self) -> int:
        """Number of messages sent."""
        return len(self.messages)

    @property
    def total_units(self) -> int:
        """Total shipped volume in units."""
        return sum(m.units for m in self.messages)

    def units_by_kind(self) -> Dict[str, int]:
        """Shipped volume per message kind (e.g. 'query', 'fetch', 'result')."""
        return dict(self._units_by_kind)

    def units_by_link(self) -> Dict[Tuple[int, int], int]:
        """Shipped volume per directed ``(sender, receiver)`` link."""
        with self._lock:
            return dict(self._units_by_link)

    def units_between(self, sender: int, receiver: int) -> int:
        """Shipped volume on one directed link."""
        return self._units_by_link.get((sender, receiver), 0)

    def data_units(self) -> int:
        """Volume of *graph data* shipped between sites (excludes the
        query broadcast and the result collection, which the paper's
        bound does not count)."""
        return self._units_by_kind.get("fetch", 0)

    def __repr__(self) -> str:
        return (
            f"MessageBus({self.total_messages} messages, "
            f"{self.total_units} units)"
        )
