"""The coordinator of the distributed strong-simulation protocol.

Section 4.3, transcribed:

1. the coordinator receives a pattern ``Q`` and broadcasts it to every
   site (accounted as ``query`` traffic);
2. each site evaluates the per-ball algorithm for balls centered at its
   own nodes, fetching cross-fragment ball regions through the bus
   (accounted as ``fetch`` traffic — the quantity the paper's locality
   bound constrains);
3. each site ships its partial result back (``result`` traffic);
4. the coordinator unions the partials, deduplicating identical perfect
   subgraphs discovered from centers on different sites.

The protocol is generic over partitioning and returns *exactly* the
centralized ``Match`` output (asserted by the integration tests).

The protocol is also generic over the *execution engine*: ``Cluster``
accepts ``engine="auto"|"kernel"|"python"`` and threads it to every
:class:`~repro.distributed.worker.SiteWorker`.  With the kernel engine
each site compiles its fragment once into a per-site CSR index
(:mod:`repro.distributed.sitekernel`) and extends it incrementally as
remote records arrive over the bus; the result set, the per-site partial
counts and the full traffic accounting are engine-independent, so the
Section 4.3 bound holds unchanged (enforced by
``tests/test_distributed_kernel_equivalence.py``).

Orthogonally to the engine, ``Cluster`` accepts a runtime ``backend``
(``"inproc"`` | ``"threads"`` | ``"processes"``, see
:mod:`repro.distributed.runtime`) choosing *where* the site workers
live; the protocol observation is byte-identical across backends
(enforced by ``tests/test_runtime.py``).
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.digraph import (
    ADD_EDGE,
    ADD_NODE,
    REMOVE_EDGE,
    REMOVE_NODE,
    RELABEL,
    DiGraph,
    GraphDelta,
    Label,
    Node,
)
from repro.core.kernel import resolve_engine
from repro.core.pattern import Pattern
from repro.core.result import MatchResult
from repro.distributed.fragment import Assignment, Fragment, fragment_graph
from repro.distributed.network import MessageBus
from repro.distributed.runtime.transport import (
    BACKENDS,
    make_transport,
    resolve_backend,
)
from repro.distributed.worker import SiteWorker
from repro.exceptions import (
    DistributedError,
    DuplicateNode,
    EdgeNotFound,
    NodeNotFound,
)
from repro.obs.metrics import (
    get_registry as _obs_registry,
    merge_snapshots,
)
from repro.obs.trace import span as _obs_span

COORDINATOR_ID = -1


@dataclass
class DistributedRunReport:
    """Outcome of one distributed evaluation.

    Attributes
    ----------
    result:
        The deduplicated set Θ of maximum perfect subgraphs.
    bus:
        The message bus with full traffic accounting.  For a report from
        ``Cluster.run`` this is the cluster's cumulative bus; a report
        replayed from the distributed result cache carries a fresh bus
        holding exactly the query's own charges (see ``query_log``).
    per_site_subgraphs:
        How many (pre-dedup) perfect subgraphs each site contributed.
    version_vector:
        The cluster's per-site version vector at evaluation time — the
        freshness stamp the distributed result cache gates hits on.
    query_log:
        The ``(sender, receiver, kind, units)`` charges this query alone
        put on the bus, in charge order.  ``Cluster.run`` holds the
        protocol lock for the whole evaluation, so the slice is exact;
        replaying it onto a fresh bus reproduces the query's accounting
        byte-identically.
    """

    result: MatchResult
    bus: MessageBus
    per_site_subgraphs: Dict[int, int]
    version_vector: Tuple[int, ...] = ()
    query_log: Tuple[Tuple[int, int, str, int], ...] = ()

    @property
    def data_shipment_units(self) -> int:
        """Graph-data volume shipped between sites (the Sec. 4.3 bound)."""
        return self.bus.data_units()

    def units_by_kind(self) -> Dict[str, int]:
        """This query's shipped units folded per message kind.

        Derived from ``query_log`` (the exact per-query slice), not the
        bus — the bus may be the cluster's cumulative one.  Empty when
        the report predates query logs.
        """
        units: Dict[str, int] = {}
        for _, _, kind, amount in self.query_log:
            units[kind] = units.get(kind, 0) + amount
        return units


class Cluster:
    """A simulated cluster over a partitioned graph.

    ``backend`` picks the runtime substrate hosting the site workers
    (see :mod:`repro.distributed.runtime`):

    * ``"inproc"`` — serial in-process evaluation (the default, and the
      reference for every observation);
    * ``"threads"`` — one thread per site (what ``parallel=True``
      selected before backends existed; the two spellings are aliases);
    * ``"processes"`` — one OS process per site behind a
      :class:`~repro.distributed.runtime.transport.ProcessTransport`:
      site evaluation runs off-GIL on real cores, queries/updates are
      broadcast in wire form, and cross-site fetches are request/reply
      through the coordinator.  Node ids and labels must be picklable on
      this backend (they cross a process boundary).

    The protocol observation — result set, per-site partial counts and
    the complete bus accounting — is byte-identical across all three.
    In every backend ``cluster.workers`` holds coordinator-side workers
    over the live fragments; on the process backend they are the fetch
    directory and introspection mirror while evaluation happens in the
    worker processes.
    """

    def __init__(
        self,
        graph: DiGraph,
        assignment: Assignment,
        num_sites: int,
        engine: str = "auto",
        parallel: bool = False,
        backend: Optional[str] = None,
    ) -> None:
        resolve_engine(engine)  # validate before building any worker
        self.engine = engine
        self.backend = resolve_backend(backend, parallel)
        self.parallel = self.backend != "inproc"
        self.bus = MessageBus()
        self.assignment: Assignment = dict(assignment)
        self.fragments: List[Fragment] = fragment_graph(
            graph, assignment, num_sites
        )
        self.workers: Dict[int, SiteWorker] = {
            fragment.site_id: SiteWorker(fragment, self.bus, engine=engine)
            for fragment in self.fragments
        }
        for worker in self.workers.values():
            worker.connect(self.workers)
        # One query/update at a time per cluster: the protocol reads and
        # resets per-query worker state, so interleaved runs (e.g. two
        # service threads sharing one cluster) must serialize to keep
        # the observation well-defined.
        self._protocol_lock = threading.Lock()
        # Per-site update counters: ``apply_update`` advances the entry
        # of every site it routes a delta to.  The sorted-site snapshot
        # (``version_vector``) is the cluster's freshness signal — two
        # equal vectors mean no fragment differs, so a cached result
        # gated on the exact vector can never be stale.
        self._versions: Dict[int, int] = {
            fragment.site_id: 0 for fragment in self.fragments
        }
        self._site_order: Tuple[int, ...] = tuple(sorted(self._versions))
        self._listeners: List["weakref.ref"] = []
        self._transport = make_transport(
            self.backend, self.workers, self.assignment, self.bus, engine
        )
        # Absorb the cluster's bus accounting into the metrics namespace
        # (sampled at snapshot time; the bus's hot path is untouched).
        _obs_registry().register_collector(self, self._sample_bus_metrics)

    def _sample_bus_metrics(self):
        bus = self.bus
        samples = [("bus.messages", {}, bus.total_messages)]
        for kind, units in sorted(bus.units_by_kind().items()):
            samples.append(("bus.units", {"kind": kind}, units))
        for (sender, receiver), units in sorted(bus.units_by_link().items()):
            samples.append(
                ("bus.units", {"link": f"{sender}->{receiver}"}, units)
            )
        return samples

    @property
    def num_sites(self) -> int:
        """Number of sites in the cluster."""
        return len(self.workers)

    # ------------------------------------------------------------------
    # Freshness signal (version vector + delta subscription)
    # ------------------------------------------------------------------
    def version_vector(self) -> Tuple[int, ...]:
        """Per-site update counters, one per site in site-id order.

        A lock-free snapshot (safe: each counter only ever grows, under
        the protocol lock) so delta subscribers — which are notified
        *while* the lock is held — can read it without deadlocking.
        """
        versions = self._versions
        return tuple(versions[site] for site in self._site_order)

    def subscribe(self, listener: object) -> None:
        """Register ``listener`` for routed update deltas (held weakly).

        ``listener`` must implement ``on_cluster_deltas(deltas)``,
        receiving a tuple of :class:`~repro.core.digraph.GraphDelta`
        after every successfully routed ``apply_update`` — the cluster
        mirror of ``DiGraph.subscribe``, so the result cache's label /
        ``d_Q`` retention rules can judge distributed entries the same
        way they judge centralized ones.  Delivery happens under the
        protocol lock with the post-update :meth:`version_vector`
        already in place; a listener must not re-enter the cluster
        (``run`` / ``apply_update``) from its callback.
        """
        self._listeners.append(weakref.ref(listener))

    def unsubscribe(self, listener: object) -> None:
        """Remove ``listener`` (idempotent; dead weakrefs pruned too)."""
        self._listeners = [
            ref for ref in self._listeners
            if ref() is not None and ref() is not listener
        ]

    def _deliver_cluster_deltas(self, deltas: Tuple[GraphDelta, ...]) -> None:
        # Iterate over a snapshot: a callback may subscribe/unsubscribe
        # (mutating self._listeners) without disturbing this delivery.
        dead = False
        for ref in tuple(self._listeners):
            target = ref()
            if target is None:
                dead = True
            else:
                target.on_cluster_deltas(deltas)
        if dead:
            self._listeners = [
                ref for ref in self._listeners if ref() is not None
            ]

    # ------------------------------------------------------------------
    # Mutation pipeline (live-cluster updates)
    # ------------------------------------------------------------------
    def apply_update(self, delta: GraphDelta, site: Optional[int] = None) -> None:
        """Route one :class:`~repro.core.digraph.GraphDelta` to its sites.

        The distributed half of the mutation pipeline: the delta stream a
        master :class:`~repro.core.digraph.DiGraph` emits can be fed here
        verbatim and the owning fragments (plus their warm per-site
        indexes) stay in sync without re-partitioning or recompiling.
        Each affected site is charged one ``update`` unit on the bus —
        identically for every engine, so protocol observations remain
        engine-independent ("update" traffic is not ``fetch`` traffic and
        does not count against the Section 4.3 data-shipment bound).

        ``site`` places an ``add_node`` explicitly; by default the least
        loaded site (ties broken by site id) takes the new node.  A
        ``remove_node`` delta expects its incident-edge deltas first —
        exactly what ``DiGraph.remove_node`` emits; the convenience
        mutators below (:meth:`remove_node` etc.) produce well-formed
        streams for callers not mirroring a master graph.

        Each routed site's :meth:`version_vector` counter advances, and
        the delta is then forwarded to cluster-level subscribers (see
        :meth:`subscribe`) with the new vector in place.
        """
        with self._protocol_lock:
            kind = delta.kind
            if kind == ADD_EDGE or kind == REMOVE_EDGE:
                source_site = self._site_of(delta.source)
                target_site = self._site_of(delta.target)
                for site_id in sorted({source_site, target_site}):
                    self.bus.send(COORDINATOR_ID, site_id, "update", 1)
                    self._transport.apply_update(
                        site_id, delta, self.assignment
                    )
                    self._versions[site_id] += 1
            elif kind == ADD_NODE:
                if delta.node in self.assignment:
                    raise DuplicateNode(delta.node)
                if site is None:
                    site = min(
                        self.workers,
                        key=lambda s: (self.workers[s].fragment.num_nodes, s),
                    )
                elif site not in self.workers:
                    raise DistributedError(f"unknown site {site!r}")
                self.assignment[delta.node] = site
                self.bus.send(COORDINATOR_ID, site, "update", 1)
                self._transport.apply_update(site, delta, self.assignment)
                self._versions[site] += 1
            elif kind == REMOVE_NODE:
                owner = self._site_of(delta.node)
                del self.assignment[delta.node]
                self.bus.send(COORDINATOR_ID, owner, "update", 1)
                self._transport.apply_update(owner, delta, self.assignment)
                self._transport.forget_remote(delta.node)
                self._versions[owner] += 1
            elif kind == RELABEL:
                owner = self._site_of(delta.node)
                self.bus.send(COORDINATOR_ID, owner, "update", 1)
                self._transport.apply_update(owner, delta, self.assignment)
                self._versions[owner] += 1
            else:
                raise DistributedError(f"unknown graph delta kind {kind!r}")
            self._deliver_cluster_deltas((delta,))

    def _site_of(self, node: Node) -> int:
        site = self.assignment.get(node)
        if site is None:
            raise NodeNotFound(node)
        return site

    def add_node(
        self, node: Node, label: Label, site: Optional[int] = None
    ) -> None:
        """Add a node to the cluster (least-loaded site by default)."""
        self.apply_update(
            GraphDelta(ADD_NODE, node=node, label=label), site=site
        )

    def remove_node(self, node: Node) -> None:
        """Remove a node and its incident edges cluster-wide."""
        owner = self._site_of(node)
        fragment = self.workers[owner].fragment
        for target in list(fragment.succ[node]):
            self.remove_edge(node, target)
        for source in list(fragment.pred[node]):
            if source != node:  # a self-loop is already gone
                self.remove_edge(source, node)
        label = fragment.labels[node]
        self.apply_update(GraphDelta(REMOVE_NODE, node=node, label=label))

    def add_edge(self, source: Node, target: Node) -> None:
        """Add a directed edge; a no-op if it exists (set semantics)."""
        source_site = self._site_of(source)
        self._site_of(target)  # validate
        if target in self.workers[source_site].fragment.succ[source]:
            return
        self.apply_update(GraphDelta(ADD_EDGE, source=source, target=target))

    def remove_edge(self, source: Node, target: Node) -> None:
        """Remove a directed edge; raises if absent."""
        source_site = self._site_of(source)
        self._site_of(target)  # validate
        if target not in self.workers[source_site].fragment.succ[source]:
            raise EdgeNotFound(source, target)
        self.apply_update(
            GraphDelta(REMOVE_EDGE, source=source, target=target)
        )

    def relabel_node(self, node: Node, label: Label) -> None:
        """Change a node's label; a no-op when unchanged."""
        owner = self._site_of(node)
        fragment = self.workers[owner].fragment
        old = fragment.labels[node]
        if old == label:
            return
        self.apply_update(
            GraphDelta(RELABEL, node=node, label=label, old_label=old)
        )

    def run(
        self,
        pattern: Pattern,
        radius: Optional[int] = None,
        engine: Optional[str] = None,
        parallel: Optional[bool] = None,
    ) -> DistributedRunReport:
        """Run the Section 4.3 protocol for one pattern.

        ``engine`` overrides the cluster default for this query only;
        the result, per-site counts and traffic accounting are identical
        for every engine choice.

        ``parallel`` (default: the cluster's ``parallel`` setting)
        evaluates the sites concurrently on the in-process backends —
        one thread per :class:`~repro.distributed.worker.SiteWorker`.
        Per-site state is self-contained (each worker owns its fragment,
        remote cache and compiled index, with thread-local visited
        buffers), cross-site fetches only *read* the owning peer's
        fragment, and the bus serializes its accounting, so the protocol
        observation — result set, per-site partial counts, every
        per-link/per-kind traffic total — is identical to a serial run;
        partials are unioned in site order either way, keeping the dedup
        order deterministic.  The ``processes`` backend always runs one
        worker process per site and ignores ``parallel``; its fetch
        charges are replayed onto the bus in site order, so the full
        observation is byte-identical there too.
        """
        if engine is not None:
            resolve_engine(engine)  # fail before any traffic is charged
        with self._protocol_lock, _obs_span("distributed.run") as _sp:
            if radius is None:
                radius = pattern.diameter
            # The protocol lock serializes runs against updates, so the
            # bus messages appended from here to the end of the run are
            # exactly this query's charges (the report's ``query_log``).
            log_start = len(self.bus.messages)
            # Step 1: broadcast the query (|Q| units per site).
            query_units = pattern.size
            for site in self.workers:
                self.bus.send(COORDINATOR_ID, site, "query", query_units)

            # Step 2: each site matches the balls of its own centers.
            use_parallel = self.parallel if parallel is None else parallel
            with _obs_span("coordinator.evaluate"):
                partials = self._transport.evaluate(
                    pattern, radius, engine, use_parallel
                )
            if _sp.enabled:
                # Graft the per-site ``site.evaluate`` subtrees (captured
                # worker-side, shipped in wire form on the process
                # backend) in site order: ONE merged trace per query.
                site_spans = self._transport.site_spans()
                for site in sorted(site_spans):
                    _sp.adopt(site_spans[site])

            # Steps 3-4: ship partials and union with dedup, in site order.
            with _obs_span("coordinator.union"):
                result = MatchResult(pattern)
                per_site: Dict[int, int] = {}
                for site, partial in partials.items():
                    per_site[site] = len(partial)
                    units = sum(sg.graph.size for sg in partial)
                    self.bus.send(site, COORDINATOR_ID, "result", units)
                    for subgraph in partial:
                        result.add(subgraph)
            query_log = tuple(
                (m.sender, m.receiver, m.kind, m.units)
                for m in self.bus.messages[log_start:]
            )
            if _sp.enabled:
                _sp.set(
                    backend=self.backend,
                    sites=self.num_sites,
                    engine=self.engine if engine is None else engine,
                    pattern=pattern.size,
                    radius=radius,
                    result=len(result),
                    **{
                        "bus.log": query_log,
                        "bus.messages": len(query_log),
                        "bus.units": sum(
                            entry[3] for entry in query_log
                        ),
                    },
                )
            return DistributedRunReport(
                result,
                self.bus,
                per_site,
                version_vector=self.version_vector(),
                query_log=query_log,
            )

    def evaluate(
        self,
        pattern: Pattern,
        radius: Optional[int] = None,
        engine: Optional[str] = None,
    ) -> DistributedRunReport:
        """Alias of :meth:`run` (the original Section 4.3 entry point)."""
        return self.run(pattern, radius, engine=engine)

    @property
    def result_store(self):
        """The cluster's shared distributed result store, or ``None``.

        Coordinator-hosted: on the ``processes`` backend the transport
        creates one eagerly (that backend exists so N front-end services
        can drive one cluster — they should share warm entries and
        single-flight leadership, not race duplicate protocol runs);
        the in-process backends opt in via :meth:`enable_result_store`.
        ``MatchService`` prefers this store over its own cache for
        ``submit_distributed``, so every service bound to this cluster
        sees the same entries.
        """
        return self._transport.result_store

    def enable_result_store(self, max_entries: int = 256):
        """Attach (or return) the shared result store for this cluster."""
        store = self._transport.result_store
        if store is None:
            from repro.service.cache import ResultCache  # avoid cycle

            store = ResultCache(max_entries)
            self._transport.result_store = store
        return store

    def worker_stats(self) -> Dict[int, Dict[str, object]]:
        """Per-site runtime counters, fetched from wherever workers live.

        On the in-process backends this reads the workers directly; on
        the process backend each worker process reports its own counters
        — in particular ``index_builds``, which a warm worker holds at 1
        across queries and updates (the "fragments compile once per
        site" guarantee, now per OS process).
        """
        with self._protocol_lock:
            return self._transport.worker_stats()

    def metrics_snapshot(self) -> Dict[str, object]:
        """One merged metrics view across coordinator and sites.

        The coordinator's own registry snapshot (which the in-process
        backends' workers publish into directly) merged with the per-site
        snapshots remote worker processes shipped back with the last
        query's ``done`` frames — counters and histogram buckets sum,
        per :func:`repro.obs.metrics.merge_snapshots`.
        """
        with self._protocol_lock:
            site_snapshots = list(self._transport.site_metrics().values())
        return merge_snapshots(_obs_registry().snapshot(), *site_snapshots)

    def close(self) -> None:
        """Release the transport (site thread pool or worker processes).

        Idempotent.  The in-process backends re-create their lazy thread
        pool on the next parallel run, preserving the old contract; a
        closed *process* transport is final — its workers have exited.
        """
        self._transport.close()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def distributed_match(
    pattern: Pattern,
    graph: DiGraph,
    assignment: Assignment,
    num_sites: int,
    radius: Optional[int] = None,
    engine: str = "auto",
    backend: Optional[str] = None,
) -> DistributedRunReport:
    """Convenience wrapper: build a cluster and evaluate one pattern.

    ``backend`` picks the runtime substrate (``"inproc"`` default,
    ``"threads"``, ``"processes"``); the observation is identical across
    backends, so one-shot callers only choose for wall-clock reasons.
    """
    cluster = Cluster(graph, assignment, num_sites, engine=engine,
                      backend=backend)
    try:
        return cluster.run(pattern, radius)
    finally:
        # One-shot: release whatever the backend holds (site thread
        # pool or worker processes).  close() is idempotent and the
        # in-process backends lazily re-create their pool, so closing
        # unconditionally is always safe.
        cluster.close()


def crossing_ball_bound(
    graph: DiGraph,
    assignment: Assignment,
    radius: int,
) -> int:
    """The paper's traffic bound: total size of boundary-crossing balls.

    Sums ``|Ĝ[v, radius]|`` (nodes + edges) over every node ``v`` with a
    neighbor on a different site.  The measured ``fetch`` traffic of a
    run must stay below this (each worker caches, so it ships each remote
    record at most once, while the bound counts full balls).
    """
    from repro.core.ball import extract_ball  # local import to avoid cycle

    bound = 0
    for node in graph.nodes():
        site = assignment[node]
        crossing = any(
            assignment[neighbor] != site for neighbor in graph.neighbors(node)
        )
        if crossing:
            ball = extract_ball(graph, node, radius)
            bound += ball.graph.size
    return bound
