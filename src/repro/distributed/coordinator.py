"""The coordinator of the distributed strong-simulation protocol.

Section 4.3, transcribed:

1. the coordinator receives a pattern ``Q`` and broadcasts it to every
   site (accounted as ``query`` traffic);
2. each site evaluates the per-ball algorithm for balls centered at its
   own nodes, fetching cross-fragment ball regions through the bus
   (accounted as ``fetch`` traffic — the quantity the paper's locality
   bound constrains);
3. each site ships its partial result back (``result`` traffic);
4. the coordinator unions the partials, deduplicating identical perfect
   subgraphs discovered from centers on different sites.

The protocol is generic over partitioning and returns *exactly* the
centralized ``Match`` output (asserted by the integration tests).

The protocol is also generic over the *execution engine*: ``Cluster``
accepts ``engine="auto"|"kernel"|"python"`` and threads it to every
:class:`~repro.distributed.worker.SiteWorker`.  With the kernel engine
each site compiles its fragment once into a per-site CSR index
(:mod:`repro.distributed.sitekernel`) and extends it incrementally as
remote records arrive over the bus; the result set, the per-site partial
counts and the full traffic accounting are engine-independent, so the
Section 4.3 bound holds unchanged (enforced by
``tests/test_distributed_kernel_equivalence.py``).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.digraph import (
    ADD_EDGE,
    ADD_NODE,
    REMOVE_EDGE,
    REMOVE_NODE,
    RELABEL,
    DiGraph,
    GraphDelta,
    Label,
    Node,
)
from repro.core.kernel import resolve_engine
from repro.core.pattern import Pattern
from repro.core.result import MatchResult
from repro.distributed.fragment import Assignment, Fragment, fragment_graph
from repro.distributed.network import MessageBus
from repro.distributed.worker import SiteWorker
from repro.exceptions import (
    DistributedError,
    DuplicateNode,
    EdgeNotFound,
    NodeNotFound,
)

COORDINATOR_ID = -1


@dataclass
class DistributedRunReport:
    """Outcome of one distributed evaluation.

    Attributes
    ----------
    result:
        The deduplicated set Θ of maximum perfect subgraphs.
    bus:
        The message bus with full traffic accounting.
    per_site_subgraphs:
        How many (pre-dedup) perfect subgraphs each site contributed.
    """

    result: MatchResult
    bus: MessageBus
    per_site_subgraphs: Dict[int, int]

    @property
    def data_shipment_units(self) -> int:
        """Graph-data volume shipped between sites (the Sec. 4.3 bound)."""
        return self.bus.data_units()


class Cluster:
    """An in-process simulated cluster over a partitioned graph."""

    def __init__(
        self,
        graph: DiGraph,
        assignment: Assignment,
        num_sites: int,
        engine: str = "auto",
        parallel: bool = False,
    ) -> None:
        resolve_engine(engine)  # validate before building any worker
        self.engine = engine
        self.parallel = parallel
        self._site_pool: Optional[ThreadPoolExecutor] = None
        self.bus = MessageBus()
        self.assignment: Assignment = dict(assignment)
        self.fragments: List[Fragment] = fragment_graph(
            graph, assignment, num_sites
        )
        self.workers: Dict[int, SiteWorker] = {
            fragment.site_id: SiteWorker(fragment, self.bus, engine=engine)
            for fragment in self.fragments
        }
        for worker in self.workers.values():
            worker.connect(self.workers)

    @property
    def num_sites(self) -> int:
        """Number of sites in the cluster."""
        return len(self.workers)

    # ------------------------------------------------------------------
    # Mutation pipeline (live-cluster updates)
    # ------------------------------------------------------------------
    def apply_update(self, delta: GraphDelta, site: Optional[int] = None) -> None:
        """Route one :class:`~repro.core.digraph.GraphDelta` to its sites.

        The distributed half of the mutation pipeline: the delta stream a
        master :class:`~repro.core.digraph.DiGraph` emits can be fed here
        verbatim and the owning fragments (plus their warm per-site
        indexes) stay in sync without re-partitioning or recompiling.
        Each affected site is charged one ``update`` unit on the bus —
        identically for every engine, so protocol observations remain
        engine-independent ("update" traffic is not ``fetch`` traffic and
        does not count against the Section 4.3 data-shipment bound).

        ``site`` places an ``add_node`` explicitly; by default the least
        loaded site (ties broken by site id) takes the new node.  A
        ``remove_node`` delta expects its incident-edge deltas first —
        exactly what ``DiGraph.remove_node`` emits; the convenience
        mutators below (:meth:`remove_node` etc.) produce well-formed
        streams for callers not mirroring a master graph.
        """
        kind = delta.kind
        if kind == ADD_EDGE or kind == REMOVE_EDGE:
            source_site = self._site_of(delta.source)
            target_site = self._site_of(delta.target)
            for site_id in sorted({source_site, target_site}):
                self.bus.send(COORDINATOR_ID, site_id, "update", 1)
                self.workers[site_id].apply_update(delta, self.assignment)
        elif kind == ADD_NODE:
            if delta.node in self.assignment:
                raise DuplicateNode(delta.node)
            if site is None:
                site = min(
                    self.workers,
                    key=lambda s: (self.workers[s].fragment.num_nodes, s),
                )
            elif site not in self.workers:
                raise DistributedError(f"unknown site {site!r}")
            self.assignment[delta.node] = site
            self.bus.send(COORDINATOR_ID, site, "update", 1)
            self.workers[site].apply_update(delta, self.assignment)
        elif kind == REMOVE_NODE:
            owner = self._site_of(delta.node)
            del self.assignment[delta.node]
            self.bus.send(COORDINATOR_ID, owner, "update", 1)
            self.workers[owner].apply_update(delta, self.assignment)
            for worker in self.workers.values():
                worker.forget_remote(delta.node)
        elif kind == RELABEL:
            owner = self._site_of(delta.node)
            self.bus.send(COORDINATOR_ID, owner, "update", 1)
            self.workers[owner].apply_update(delta, self.assignment)
        else:
            raise DistributedError(f"unknown graph delta kind {kind!r}")

    def _site_of(self, node: Node) -> int:
        site = self.assignment.get(node)
        if site is None:
            raise NodeNotFound(node)
        return site

    def add_node(
        self, node: Node, label: Label, site: Optional[int] = None
    ) -> None:
        """Add a node to the cluster (least-loaded site by default)."""
        self.apply_update(
            GraphDelta(ADD_NODE, node=node, label=label), site=site
        )

    def remove_node(self, node: Node) -> None:
        """Remove a node and its incident edges cluster-wide."""
        owner = self._site_of(node)
        fragment = self.workers[owner].fragment
        for target in list(fragment.succ[node]):
            self.remove_edge(node, target)
        for source in list(fragment.pred[node]):
            if source != node:  # a self-loop is already gone
                self.remove_edge(source, node)
        label = fragment.labels[node]
        self.apply_update(GraphDelta(REMOVE_NODE, node=node, label=label))

    def add_edge(self, source: Node, target: Node) -> None:
        """Add a directed edge; a no-op if it exists (set semantics)."""
        source_site = self._site_of(source)
        self._site_of(target)  # validate
        if target in self.workers[source_site].fragment.succ[source]:
            return
        self.apply_update(GraphDelta(ADD_EDGE, source=source, target=target))

    def remove_edge(self, source: Node, target: Node) -> None:
        """Remove a directed edge; raises if absent."""
        source_site = self._site_of(source)
        self._site_of(target)  # validate
        if target not in self.workers[source_site].fragment.succ[source]:
            raise EdgeNotFound(source, target)
        self.apply_update(
            GraphDelta(REMOVE_EDGE, source=source, target=target)
        )

    def relabel_node(self, node: Node, label: Label) -> None:
        """Change a node's label; a no-op when unchanged."""
        owner = self._site_of(node)
        fragment = self.workers[owner].fragment
        old = fragment.labels[node]
        if old == label:
            return
        self.apply_update(
            GraphDelta(RELABEL, node=node, label=label, old_label=old)
        )

    def run(
        self,
        pattern: Pattern,
        radius: Optional[int] = None,
        engine: Optional[str] = None,
        parallel: Optional[bool] = None,
    ) -> DistributedRunReport:
        """Run the Section 4.3 protocol for one pattern.

        ``engine`` overrides the cluster default for this query only;
        the result, per-site counts and traffic accounting are identical
        for every engine choice.

        ``parallel`` (default: the cluster's ``parallel`` setting)
        evaluates the sites concurrently, one thread per
        :class:`~repro.distributed.worker.SiteWorker`.  Per-site state is
        self-contained (each worker owns its fragment, remote cache and
        compiled index, with thread-local visited buffers), cross-site
        fetches only *read* the owning peer's fragment, and the bus
        serializes its accounting, so the protocol observation — result
        set, per-site partial counts, every per-link/per-kind traffic
        total — is identical to a serial run; partials are unioned in
        site order either way, keeping the dedup order deterministic.
        """
        if radius is None:
            radius = pattern.diameter
        # Step 1: broadcast the query (|Q| units per site).
        query_units = pattern.size
        for site in self.workers:
            self.bus.send(COORDINATOR_ID, site, "query", query_units)

        # Step 2: each site matches the balls of its own centers.
        def evaluate(worker: SiteWorker) -> List:
            worker.clear_cache()
            return worker.match_local(pattern, radius, engine=engine)

        use_parallel = self.parallel if parallel is None else parallel
        if use_parallel and len(self.workers) > 1:
            # One pool per cluster, created lazily and reused across
            # queries: repeated parallel runs keep their threads (and
            # with them each site index's warm thread-local visited
            # buffers) instead of respawning per query.
            pool = self._site_pool
            if pool is None:
                pool = ThreadPoolExecutor(
                    max_workers=len(self.workers),
                    thread_name_prefix="repro-site",
                )
                self._site_pool = pool
            futures = {
                site: pool.submit(evaluate, worker)
                for site, worker in self.workers.items()
            }
            partials = {site: f.result() for site, f in futures.items()}
        else:
            partials = {
                site: evaluate(worker)
                for site, worker in self.workers.items()
            }

        # Steps 3-4: ship partials and union with dedup, in site order.
        result = MatchResult(pattern)
        per_site: Dict[int, int] = {}
        for site, partial in partials.items():
            per_site[site] = len(partial)
            units = sum(sg.graph.size for sg in partial)
            self.bus.send(site, COORDINATOR_ID, "result", units)
            for subgraph in partial:
                result.add(subgraph)
        return DistributedRunReport(result, self.bus, per_site)

    def evaluate(
        self,
        pattern: Pattern,
        radius: Optional[int] = None,
        engine: Optional[str] = None,
    ) -> DistributedRunReport:
        """Alias of :meth:`run` (the original Section 4.3 entry point)."""
        return self.run(pattern, radius, engine=engine)

    def close(self) -> None:
        """Shut the (lazily created) site pool down, if any.

        Optional — an unreferenced cluster's pool threads exit on their
        own when the executor is collected — but deterministic teardown
        is nicer in long-lived processes.
        """
        pool, self._site_pool = self._site_pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def distributed_match(
    pattern: Pattern,
    graph: DiGraph,
    assignment: Assignment,
    num_sites: int,
    radius: Optional[int] = None,
    engine: str = "auto",
) -> DistributedRunReport:
    """Convenience wrapper: build a cluster and evaluate one pattern."""
    cluster = Cluster(graph, assignment, num_sites, engine=engine)
    return cluster.run(pattern, radius)


def crossing_ball_bound(
    graph: DiGraph,
    assignment: Assignment,
    radius: int,
) -> int:
    """The paper's traffic bound: total size of boundary-crossing balls.

    Sums ``|Ĝ[v, radius]|`` (nodes + edges) over every node ``v`` with a
    neighbor on a different site.  The measured ``fetch`` traffic of a
    run must stay below this (each worker caches, so it ships each remote
    record at most once, while the bound counts full balls).
    """
    from repro.core.ball import extract_ball  # local import to avoid cycle

    bound = 0
    for node in graph.nodes():
        site = assignment[node]
        crossing = any(
            assignment[neighbor] != site for neighbor in graph.neighbors(node)
        )
        if crossing:
            ball = extract_ball(graph, node, radius)
            bound += ball.graph.size
    return bound
