"""The coordinator of the distributed strong-simulation protocol.

Section 4.3, transcribed:

1. the coordinator receives a pattern ``Q`` and broadcasts it to every
   site (accounted as ``query`` traffic);
2. each site evaluates the per-ball algorithm for balls centered at its
   own nodes, fetching cross-fragment ball regions through the bus
   (accounted as ``fetch`` traffic — the quantity the paper's locality
   bound constrains);
3. each site ships its partial result back (``result`` traffic);
4. the coordinator unions the partials, deduplicating identical perfect
   subgraphs discovered from centers on different sites.

The protocol is generic over partitioning and returns *exactly* the
centralized ``Match`` output (asserted by the integration tests).

The protocol is also generic over the *execution engine*: ``Cluster``
accepts ``engine="auto"|"kernel"|"python"`` and threads it to every
:class:`~repro.distributed.worker.SiteWorker`.  With the kernel engine
each site compiles its fragment once into a per-site CSR index
(:mod:`repro.distributed.sitekernel`) and extends it incrementally as
remote records arrive over the bus; the result set, the per-site partial
counts and the full traffic accounting are engine-independent, so the
Section 4.3 bound holds unchanged (enforced by
``tests/test_distributed_kernel_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.digraph import DiGraph
from repro.core.kernel import resolve_engine
from repro.core.pattern import Pattern
from repro.core.result import MatchResult
from repro.distributed.fragment import Assignment, Fragment, fragment_graph
from repro.distributed.network import MessageBus
from repro.distributed.worker import SiteWorker

COORDINATOR_ID = -1


@dataclass
class DistributedRunReport:
    """Outcome of one distributed evaluation.

    Attributes
    ----------
    result:
        The deduplicated set Θ of maximum perfect subgraphs.
    bus:
        The message bus with full traffic accounting.
    per_site_subgraphs:
        How many (pre-dedup) perfect subgraphs each site contributed.
    """

    result: MatchResult
    bus: MessageBus
    per_site_subgraphs: Dict[int, int]

    @property
    def data_shipment_units(self) -> int:
        """Graph-data volume shipped between sites (the Sec. 4.3 bound)."""
        return self.bus.data_units()


class Cluster:
    """An in-process simulated cluster over a partitioned graph."""

    def __init__(
        self,
        graph: DiGraph,
        assignment: Assignment,
        num_sites: int,
        engine: str = "auto",
    ) -> None:
        resolve_engine(engine)  # validate before building any worker
        self.engine = engine
        self.bus = MessageBus()
        self.fragments: List[Fragment] = fragment_graph(
            graph, assignment, num_sites
        )
        self.workers: Dict[int, SiteWorker] = {
            fragment.site_id: SiteWorker(fragment, self.bus, engine=engine)
            for fragment in self.fragments
        }
        for worker in self.workers.values():
            worker.connect(self.workers)

    @property
    def num_sites(self) -> int:
        """Number of sites in the cluster."""
        return len(self.workers)

    def run(
        self,
        pattern: Pattern,
        radius: Optional[int] = None,
        engine: Optional[str] = None,
    ) -> DistributedRunReport:
        """Run the Section 4.3 protocol for one pattern.

        ``engine`` overrides the cluster default for this query only;
        the result, per-site counts and traffic accounting are identical
        for every engine choice.
        """
        if radius is None:
            radius = pattern.diameter
        # Step 1: broadcast the query (|Q| units per site).
        query_units = pattern.size
        for site in self.workers:
            self.bus.send(COORDINATOR_ID, site, "query", query_units)

        # Steps 2-3: each site matches its own centers and ships partials.
        result = MatchResult(pattern)
        per_site: Dict[int, int] = {}
        for site, worker in self.workers.items():
            worker.clear_cache()
            partial = worker.match_local(pattern, radius, engine=engine)
            per_site[site] = len(partial)
            units = sum(sg.graph.size for sg in partial)
            self.bus.send(site, COORDINATOR_ID, "result", units)
            # Step 4: union with dedup at the coordinator.
            for subgraph in partial:
                result.add(subgraph)
        return DistributedRunReport(result, self.bus, per_site)

    def evaluate(
        self,
        pattern: Pattern,
        radius: Optional[int] = None,
        engine: Optional[str] = None,
    ) -> DistributedRunReport:
        """Alias of :meth:`run` (the original Section 4.3 entry point)."""
        return self.run(pattern, radius, engine=engine)


def distributed_match(
    pattern: Pattern,
    graph: DiGraph,
    assignment: Assignment,
    num_sites: int,
    radius: Optional[int] = None,
    engine: str = "auto",
) -> DistributedRunReport:
    """Convenience wrapper: build a cluster and evaluate one pattern."""
    cluster = Cluster(graph, assignment, num_sites, engine=engine)
    return cluster.run(pattern, radius)


def crossing_ball_bound(
    graph: DiGraph,
    assignment: Assignment,
    radius: int,
) -> int:
    """The paper's traffic bound: total size of boundary-crossing balls.

    Sums ``|Ĝ[v, radius]|`` (nodes + edges) over every node ``v`` with a
    neighbor on a different site.  The measured ``fetch`` traffic of a
    run must stay below this (each worker caches, so it ships each remote
    record at most once, while the bound counts full balls).
    """
    from repro.core.ball import extract_ball  # local import to avoid cycle

    bound = 0
    for node in graph.nodes():
        site = assignment[node]
        crossing = any(
            assignment[neighbor] != site for neighbor in graph.neighbors(node)
        )
        if crossing:
            ball = extract_ball(graph, node, radius)
            bound += ball.graph.size
    return bound
