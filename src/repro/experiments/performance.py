"""Exp-2 harness — running time of the centralized algorithms (Figure 8).

Times ``Sim`` (graph simulation), ``Match`` (unoptimized strong
simulation), ``Match+`` (all optimizations) and — on small inputs only —
``VF2``, along the four axes the paper sweeps: pattern size ``|Vq|``,
pattern density ``αq``, data size ``|V|`` and data density ``α``.

The absolute numbers are pure-Python and smaller-scale than the paper's;
EXPERIMENTS.md records the *shape* comparisons the paper makes: VF2 is
orders of magnitude slower and blows up with size; Match+ runs at roughly
2/3 of Match; Sim is fastest; everything but VF2 scales smoothly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines.vf2 import vf2
from repro.core.digraph import DiGraph
from repro.core.matchplus import match_plus
from repro.core.pattern import Pattern
from repro.core.simulation import graph_simulation
from repro.core.strong import match
from repro.utils.timer import timed

PERF_ALGORITHMS = ("Sim", "Match", "Match+", "VF2")


@dataclass
class TimingRun:
    """Wall-clock seconds per algorithm for one (pattern, data) pair.

    ``None`` marks an algorithm that was skipped (e.g. VF2 on large data,
    exactly as the paper skips it in Figures 8(c)/(d)/(g)/(h)).
    """

    pattern_size: int
    data_size: int
    seconds: Dict[str, Optional[float]]


def time_algorithms(
    pattern: Pattern,
    data: DiGraph,
    include_vf2: bool = False,
    vf2_max_states: int = 2_000_000,
    vf2_max_matches: int = 20_000,
    engine: str = "auto",
) -> TimingRun:
    """Time Sim / Match / Match+ (and optionally VF2) on one pair.

    ``engine`` pins the execution backend for the three simulation-based
    algorithms (``"auto"`` | ``"kernel"`` | ``"python"``) so sweeps can
    compare the engines or reproduce the paper's reference-path numbers.
    """
    seconds: Dict[str, Optional[float]] = {}
    _, seconds["Sim"] = timed(
        lambda: graph_simulation(pattern, data, engine=engine)
    )
    _, seconds["Match"] = timed(lambda: match(pattern, data, engine=engine))
    _, seconds["Match+"] = timed(
        lambda: match_plus(pattern, data, engine=engine)
    )
    if include_vf2:
        _, seconds["VF2"] = timed(
            lambda: vf2(
                pattern,
                data,
                max_matches=vf2_max_matches,
                max_states=vf2_max_states,
            )
        )
    else:
        seconds["VF2"] = None
    return TimingRun(pattern.num_nodes, data.num_nodes, seconds)


@dataclass
class TimingSweep:
    """A series of timing runs along one swept axis."""

    axis_name: str
    axis_values: List[float] = field(default_factory=list)
    runs: List[TimingRun] = field(default_factory=list)

    def add(self, axis_value: float, run: TimingRun) -> None:
        """Append one sweep point."""
        self.axis_values.append(axis_value)
        self.runs.append(run)

    def series(self) -> Dict[str, List[Optional[float]]]:
        """Per-algorithm seconds along the axis (the Fig. 8 series)."""
        return {
            name: [run.seconds.get(name) for run in self.runs]
            for name in PERF_ALGORITHMS
        }

    def speedup_match_plus(self) -> List[float]:
        """Per-point ``time(Match+) / time(Match)`` — the paper reports
        a consistent ≈ 2/3 ratio (a ≥ 33% reduction)."""
        ratios: List[float] = []
        for run in self.runs:
            match_time = run.seconds.get("Match")
            plus_time = run.seconds.get("Match+")
            if match_time and plus_time and match_time > 0:
                ratios.append(plus_time / match_time)
        return ratios


def sweep_timing(
    axis_name: str,
    axis_values: Sequence[float],
    pair_for_value: Callable[[float, int], Optional[tuple]],
    include_vf2: bool = False,
    repeats: int = 1,
    **time_kwargs,
) -> TimingSweep:
    """Generic Exp-2 sweep.

    ``pair_for_value(value, repeat_index)`` returns ``(pattern, data)``
    for one sweep point (or ``None`` to skip it).  With ``repeats > 1``
    each point is timed several times and the mean is recorded, matching
    the paper's "each test was repeated over 5 times" protocol.
    """
    sweep = TimingSweep(axis_name=axis_name)
    for value in axis_values:
        accumulated: Dict[str, List[float]] = {}
        pattern_size = data_size = 0
        produced = False
        for repeat in range(repeats):
            pair = pair_for_value(value, repeat)
            if pair is None:
                continue
            pattern, data = pair
            run = time_algorithms(
                pattern, data, include_vf2=include_vf2, **time_kwargs
            )
            produced = True
            pattern_size, data_size = run.pattern_size, run.data_size
            for name, sec in run.seconds.items():
                if sec is not None:
                    accumulated.setdefault(name, []).append(sec)
        if not produced:
            continue
        averaged: Dict[str, Optional[float]] = {
            name: (sum(vals) / len(vals)) for name, vals in accumulated.items()
        }
        for name in PERF_ALGORITHMS:
            averaged.setdefault(name, None)
        sweep.add(value, TimingRun(pattern_size, data_size, averaged))
    return sweep
