"""Exp-2 harness — running time of the centralized algorithms (Figure 8).

Times ``Sim`` (graph simulation), ``Match`` (unoptimized strong
simulation), ``Match+`` (all optimizations) and — on small inputs only —
``VF2``, along the four axes the paper sweeps: pattern size ``|Vq|``,
pattern density ``αq``, data size ``|V|`` and data density ``α``.

Beyond the paper's static sweeps, :func:`time_update_workload` times the
Section 6 scenario — a stream of updates with a requery after each — and
reports *amortized per-update latency* per execution strategy
(incremental-kernel / recompile-kernel / reference), registered as the
``incremental-updates`` experiment.

The absolute numbers are pure-Python and smaller-scale than the paper's;
EXPERIMENTS.md records the *shape* comparisons the paper makes: VF2 is
orders of magnitude slower and blows up with size; Match+ runs at roughly
2/3 of Match; Sim is fastest; everything but VF2 scales smoothly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines.vf2 import vf2
from repro.core.digraph import DiGraph, Node
from repro.core.kernel import get_index, index_maintenance
from repro.core.matchplus import match_plus
from repro.core.pattern import Pattern
from repro.core.simulation import graph_simulation
from repro.core.strong import match
from repro.utils.timer import timed

PERF_ALGORITHMS = ("Sim", "Match", "Match+", "VF2")

#: The execution strategies the update workload compares.
UPDATE_STRATEGIES = ("incremental-kernel", "recompile-kernel", "reference")


@dataclass
class TimingRun:
    """Wall-clock seconds per algorithm for one (pattern, data) pair.

    ``None`` marks an algorithm that was skipped (e.g. VF2 on large data,
    exactly as the paper skips it in Figures 8(c)/(d)/(g)/(h)).
    """

    pattern_size: int
    data_size: int
    seconds: Dict[str, Optional[float]]


def time_algorithms(
    pattern: Pattern,
    data: DiGraph,
    include_vf2: bool = False,
    vf2_max_states: int = 2_000_000,
    vf2_max_matches: int = 20_000,
    engine: str = "auto",
) -> TimingRun:
    """Time Sim / Match / Match+ (and optionally VF2) on one pair.

    ``engine`` pins the execution backend for the three simulation-based
    algorithms (``"auto"`` | ``"kernel"`` | ``"python"``) so sweeps can
    compare the engines or reproduce the paper's reference-path numbers.
    """
    seconds: Dict[str, Optional[float]] = {}
    _, seconds["Sim"] = timed(
        lambda: graph_simulation(pattern, data, engine=engine)
    )
    _, seconds["Match"] = timed(lambda: match(pattern, data, engine=engine))
    _, seconds["Match+"] = timed(
        lambda: match_plus(pattern, data, engine=engine)
    )
    if include_vf2:
        _, seconds["VF2"] = timed(
            lambda: vf2(
                pattern,
                data,
                max_matches=vf2_max_matches,
                max_states=vf2_max_states,
            )
        )
    else:
        seconds["VF2"] = None
    return TimingRun(pattern.num_nodes, data.num_nodes, seconds)


def random_insertion_stream(
    data: DiGraph, count: int, seed: int = 5
) -> List[Tuple[Node, Node]]:
    """``count`` distinct edges absent from ``data``, reproducibly.

    The one edge-stream generator shared by the update-workload
    experiment, the ``bench_kernel`` incremental section and tests, so
    all three time the same kind of stream.
    """
    rng = random.Random(seed)
    nodes = list(data.nodes())
    seen = set(data.edges())
    absent = len(nodes) * len(nodes) - len(seen)
    if count > absent:
        raise ValueError(
            f"cannot draw {count} absent edges: only {absent} ordered "
            "pairs (including self-loops) are missing from the graph"
        )
    stream: List[Tuple[Node, Node]] = []
    while len(stream) < count:
        source, target = rng.choice(nodes), rng.choice(nodes)
        if (source, target) not in seen:
            seen.add((source, target))
            stream.append((source, target))
    return stream


@dataclass
class UpdateWorkloadRun:
    """Amortized timing of one update+requery stream.

    ``seconds`` / ``amortized_seconds`` map each strategy in
    :data:`UPDATE_STRATEGIES` to its total and per-update wall-clock;
    ``full_compiles`` records how many from-scratch index compilations
    the incremental-kernel strategy performed *after* priming (zero for
    a pure-insertion stream — the point of the mutation pipeline).
    ``final_results`` holds each strategy's last query result in
    canonical form; :meth:`results_identical` is the equivalence gate.
    """

    data_size: int
    pattern_size: int
    num_updates: int
    seconds: Dict[str, float]
    amortized_seconds: Dict[str, float]
    full_compiles: int
    final_results: Dict[str, object]

    def results_identical(self) -> bool:
        """True iff every strategy ended on the same canonical result."""
        values = list(self.final_results.values())
        return all(value == values[0] for value in values[1:])


def _canonical_match_result(result) -> frozenset:
    return frozenset(
        (sg.signature(), sg.relation.pair_set()) for sg in result
    )


def time_update_workload(
    pattern: Pattern,
    data: DiGraph,
    updates: Sequence[Tuple[Node, Node]],
    query: Optional[Callable[[Pattern, DiGraph, str], object]] = None,
    canonicalize: Optional[Callable[[object], object]] = None,
) -> UpdateWorkloadRun:
    """Time an edge-insertion stream with a requery after every update.

    Each strategy runs on its own copy of ``data``: the
    ``incremental-kernel`` strategy keeps one warm, delta-maintained
    index; ``recompile-kernel`` disables maintenance so every requery
    recompiles; ``reference`` runs the pure-Python engine.  ``query``
    defaults to ``match_plus`` (with ``canonicalize`` defaulting to the
    signature/relation canonical form); a custom callable receives
    ``(pattern, data, engine)``.  The priming query is excluded from the
    timing, so the numbers are pure update+requery cost.
    """
    if query is None:
        query = lambda q, g, engine: match_plus(q, g, engine=engine)
        if canonicalize is None:
            canonicalize = _canonical_match_result
    if canonicalize is None:
        canonicalize = lambda result: result
    seconds: Dict[str, float] = {}
    final_results: Dict[str, object] = {}
    full_compiles = 0
    for strategy in UPDATE_STRATEGIES:
        graph = data.copy()
        engine = "python" if strategy == "reference" else "kernel"
        maintain = strategy != "recompile-kernel"
        with index_maintenance(maintain):
            query(pattern, graph, engine)  # prime outside the clock
            primed_compiles = (
                get_index(graph).stats.full_compiles
                if engine == "kernel" and maintain
                else 0
            )
            last: List[object] = [None]

            def run() -> None:
                for source, target in updates:
                    graph.add_edge(source, target)
                    last[0] = query(pattern, graph, engine)

            _, seconds[strategy] = timed(run)
            final_results[strategy] = canonicalize(last[0])
            if engine == "kernel" and maintain:
                full_compiles = (
                    get_index(graph).stats.full_compiles - primed_compiles
                )
    num_updates = max(1, len(updates))
    return UpdateWorkloadRun(
        data_size=data.num_nodes,
        pattern_size=pattern.num_nodes,
        num_updates=len(updates),
        seconds=seconds,
        amortized_seconds={
            name: total / num_updates for name, total in seconds.items()
        },
        full_compiles=full_compiles,
        final_results=final_results,
    )


@dataclass
class TimingSweep:
    """A series of timing runs along one swept axis."""

    axis_name: str
    axis_values: List[float] = field(default_factory=list)
    runs: List[TimingRun] = field(default_factory=list)

    def add(self, axis_value: float, run: TimingRun) -> None:
        """Append one sweep point."""
        self.axis_values.append(axis_value)
        self.runs.append(run)

    def series(self) -> Dict[str, List[Optional[float]]]:
        """Per-algorithm seconds along the axis (the Fig. 8 series)."""
        return {
            name: [run.seconds.get(name) for run in self.runs]
            for name in PERF_ALGORITHMS
        }

    def speedup_match_plus(self) -> List[float]:
        """Per-point ``time(Match+) / time(Match)`` — the paper reports
        a consistent ≈ 2/3 ratio (a ≥ 33% reduction)."""
        ratios: List[float] = []
        for run in self.runs:
            match_time = run.seconds.get("Match")
            plus_time = run.seconds.get("Match+")
            if match_time and plus_time and match_time > 0:
                ratios.append(plus_time / match_time)
        return ratios


def sweep_timing(
    axis_name: str,
    axis_values: Sequence[float],
    pair_for_value: Callable[[float, int], Optional[tuple]],
    include_vf2: bool = False,
    repeats: int = 1,
    **time_kwargs,
) -> TimingSweep:
    """Generic Exp-2 sweep.

    ``pair_for_value(value, repeat_index)`` returns ``(pattern, data)``
    for one sweep point (or ``None`` to skip it).  With ``repeats > 1``
    each point is timed several times and the mean is recorded, matching
    the paper's "each test was repeated over 5 times" protocol.
    """
    sweep = TimingSweep(axis_name=axis_name)
    for value in axis_values:
        accumulated: Dict[str, List[float]] = {}
        pattern_size = data_size = 0
        produced = False
        for repeat in range(repeats):
            pair = pair_for_value(value, repeat)
            if pair is None:
                continue
            pattern, data = pair
            run = time_algorithms(
                pattern, data, include_vf2=include_vf2, **time_kwargs
            )
            produced = True
            pattern_size, data_size = run.pattern_size, run.data_size
            for name, sec in run.seconds.items():
                if sec is not None:
                    accumulated.setdefault(name, []).append(sec)
        if not produced:
            continue
        averaged: Dict[str, Optional[float]] = {
            name: (sum(vals) / len(vals)) for name, vals in accumulated.items()
        }
        for name in PERF_ALGORITHMS:
            averaged.setdefault(name, None)
        sweep.add(value, TimingRun(pattern_size, data_size, averaged))
    return sweep
