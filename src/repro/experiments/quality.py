"""Exp-1 harness — match quality (Figures 7(c)–(n), Table 3).

For each (pattern, data) pair the harness runs the five algorithms the
paper compares — VF2, Match (strong simulation), Sim (graph simulation),
TALE and MCS — and normalizes their outputs into
:class:`~repro.experiments.metrics.AlgorithmOutcome` records, from which
the closeness series, matched-subgraph counts and size histograms of the
paper's plots are computed.

VF2's exponential enumeration is capped by a state budget (the paper
likewise could only run VF2 on its smallest configurations); a run whose
budget trips is still usable — closeness then *under*-counts the
reference, which the harness records in the run metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.baselines.mcs import McsParameters, mcs_match
from repro.baselines.tale import TaleParameters, tale
from repro.baselines.vf2 import vf2
from repro.core.digraph import DiGraph
from repro.core.matchplus import match_plus
from repro.core.pattern import Pattern
from repro.core.simulation import graph_simulation
from repro.datasets.patterns import sample_pattern_from_data
from repro.experiments.metrics import (
    AlgorithmOutcome,
    closeness,
    outcome_from_match_result,
    outcome_from_relation,
)

ALGORITHMS = ("VF2", "Match", "MCS", "TALE", "Sim")


@dataclass
class QualityRun:
    """Everything Exp-1 measures for one (pattern, data) pair."""

    pattern_size: int
    data_size: int
    outcomes: Dict[str, AlgorithmOutcome]
    reference_nodes: frozenset
    vf2_exhausted: bool

    def closeness_of(self, name: str) -> float:
        """Closeness of one algorithm in this run."""
        return closeness(set(self.reference_nodes), self.outcomes[name])

    def subgraph_count_of(self, name: str) -> Optional[int]:
        """Matched-subgraph count of one algorithm (None for Sim)."""
        return self.outcomes[name].num_matched_subgraphs


def run_quality(
    pattern: Pattern,
    data: DiGraph,
    vf2_max_states: int = 2_000_000,
    vf2_max_matches: int = 20_000,
    tale_params: Optional[TaleParameters] = None,
    mcs_params: Optional[McsParameters] = None,
) -> QualityRun:
    """Run all five algorithms on one (pattern, data) pair."""
    vf2_result = vf2(
        pattern, data, max_matches=vf2_max_matches, max_states=vf2_max_states
    )
    reference_nodes = frozenset(vf2_result.matched_nodes())
    # Hitting the embedding cap truncates the reference node set exactly
    # like a state-budget trip does; both make closeness unreliable.
    reference_truncated = (
        vf2_result.exhausted
        or len(vf2_result.embeddings) >= vf2_max_matches
    )

    outcomes: Dict[str, AlgorithmOutcome] = {}
    outcomes["VF2"] = AlgorithmOutcome(
        name="VF2",
        matched_nodes=reference_nodes,
        num_matched_subgraphs=vf2_result.num_matched_subgraphs,
        subgraph_sizes=tuple(
            len(nodes) for nodes, _ in vf2_result.subgraph_signatures
        ),
    )
    outcomes["Match"] = outcome_from_match_result(match_plus(pattern, data))
    outcomes["Sim"] = outcome_from_relation(graph_simulation(pattern, data))

    tale_result = tale(pattern, data, tale_params)
    outcomes["TALE"] = AlgorithmOutcome(
        name="TALE",
        matched_nodes=frozenset(tale_result.matched_nodes()),
        num_matched_subgraphs=tale_result.num_matched_subgraphs,
        subgraph_sizes=tuple(
            len(sig) for sig in tale_result.subgraph_signatures
        ),
    )
    mcs_result = mcs_match(pattern, data, mcs_params)
    outcomes["MCS"] = AlgorithmOutcome(
        name="MCS",
        matched_nodes=frozenset(mcs_result.matched_nodes()),
        num_matched_subgraphs=mcs_result.num_matched_subgraphs,
        subgraph_sizes=tuple(
            len(nodes) for nodes, _ in mcs_result.accepted
        ),
    )
    return QualityRun(
        pattern_size=pattern.num_nodes,
        data_size=data.num_nodes,
        outcomes=outcomes,
        reference_nodes=reference_nodes,
        vf2_exhausted=reference_truncated,
    )


@dataclass
class QualitySweep:
    """A series of quality runs along one swept axis (|Vq| or |V|)."""

    axis_name: str
    axis_values: List[int] = field(default_factory=list)
    runs: List[QualityRun] = field(default_factory=list)

    def add(self, axis_value: int, run: QualityRun) -> None:
        """Append one sweep point."""
        self.axis_values.append(axis_value)
        self.runs.append(run)

    def closeness_series(self) -> Dict[str, List[float]]:
        """Per-algorithm closeness along the axis (Fig. 7(c)–(h) series)."""
        return {
            name: [run.closeness_of(name) for run in self.runs]
            for name in ALGORITHMS
        }

    def subgraph_count_series(self) -> Dict[str, List[Optional[int]]]:
        """Per-algorithm matched-subgraph counts (Fig. 7(i)–(n) series)."""
        return {
            name: [run.subgraph_count_of(name) for run in self.runs]
            for name in ALGORITHMS
            if name != "Sim"  # the paper omits Sim here (single relation)
        }

    def mean_closeness(self, reliable_only: bool = False) -> Dict[str, float]:
        """Average closeness per algorithm over the sweep.

        With ``reliable_only`` the average skips runs whose VF2 search
        exhausted its budget: there the reference node set undercounts,
        so closeness is biased low for every algorithm and the paper's
        comparisons are not meaningful at those points.
        """
        runs = [
            run
            for run in self.runs
            if not (reliable_only and run.vf2_exhausted)
        ]
        return {
            name: (
                sum(run.closeness_of(name) for run in runs) / len(runs)
                if runs
                else 0.0
            )
            for name in ALGORITHMS
        }

    def reliable_run_count(self) -> int:
        """Number of runs whose VF2 reference completed within budget."""
        return sum(1 for run in self.runs if not run.vf2_exhausted)


def sweep_pattern_sizes(
    data: DiGraph,
    sizes: Sequence[int],
    seed: int = 0,
    **run_kwargs,
) -> QualitySweep:
    """Vary ``|Vq|`` with fixed data (Fig. 7(c)–(e) / 7(i)–(k) workload).

    Patterns are sampled from the data graph (see
    :func:`repro.datasets.patterns.sample_pattern_from_data`) so the VF2
    reference is never vacuously empty.
    """
    sweep = QualitySweep(axis_name="|Vq|")
    for index, size in enumerate(sizes):
        pattern = sample_pattern_from_data(data, size, seed=seed + index)
        if pattern is None:
            continue
        sweep.add(size, run_quality(pattern, data, **run_kwargs))
    return sweep


def sweep_data_sizes(
    data_for_size,
    sizes: Sequence[int],
    pattern_size: int = 10,
    seed: int = 0,
    **run_kwargs,
) -> QualitySweep:
    """Vary ``|V|`` with fixed ``|Vq|`` (Fig. 7(f)–(h) / 7(l)–(n) workload).

    ``data_for_size`` is a callable ``size -> DiGraph`` (a dataset
    generator partially applied with its own parameters).
    """
    sweep = QualitySweep(axis_name="|V|")
    for index, size in enumerate(sizes):
        data = data_for_size(size)
        pattern = sample_pattern_from_data(data, pattern_size, seed=seed + index)
        if pattern is None:
            continue
        sweep.add(size, run_quality(pattern, data, **run_kwargs))
    return sweep
