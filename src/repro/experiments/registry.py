"""Named experiment registry — regenerate any paper table/figure on demand.

Used by the ``python -m repro reproduce`` CLI subcommand (and available
programmatically).  Each entry renders the corresponding table/figure at
a caller-chosen scale; the benchmark suite under ``benchmarks/`` remains
the canonical, asserted reproduction — this registry is the interactive
view of the same harnesses.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.datasets import generate_amazon, generate_graph, generate_youtube
from repro.datasets.patterns import sample_pattern_from_data
from repro.experiments.performance import sweep_timing, time_update_workload
from repro.experiments.quality import sweep_data_sizes, sweep_pattern_sizes
from repro.experiments.tables import (
    render_closeness_figure,
    render_subgraph_count_figure,
    render_table,
    render_table3,
    render_timing_figure,
)

Renderer = Callable[[int], str]


def _datasets(scale: int):
    return {
        "Amazon": generate_amazon(scale, num_labels=20, seed=11),
        "YouTube": generate_youtube(max(200, scale // 2), num_labels=15, seed=13),
        "Synthetic": generate_graph(scale * 2, alpha=1.2, num_labels=20, seed=17),
    }


def _vq_values(scale: int) -> List[int]:
    return [2, 4, 6, 8, 10] if scale >= 500 else [2, 4, 6]


def fig7_closeness_vq(scale: int) -> str:
    """Figures 7(c)-(e): closeness vs |Vq|."""
    blocks = []
    for name, data in _datasets(scale).items():
        sweep = sweep_pattern_sizes(data, _vq_values(scale), seed=101)
        blocks.append(
            render_closeness_figure(f"closeness vs |Vq| ({name})", sweep)
        )
    return "\n\n".join(blocks)


def fig7_closeness_v(scale: int) -> str:
    """Figures 7(f)-(h): closeness vs |V| at |Vq| = 10."""
    sizes = [scale // 4, scale // 2, scale]
    blocks = []
    for name, generator in (
        ("Amazon", lambda n: generate_amazon(n, num_labels=20, seed=11)),
        ("YouTube", lambda n: generate_youtube(n, num_labels=15, seed=13)),
        ("Synthetic", lambda n: generate_graph(n, alpha=1.2, num_labels=20, seed=17)),
    ):
        sweep = sweep_data_sizes(generator, sizes, pattern_size=10, seed=201)
        blocks.append(
            render_closeness_figure(f"closeness vs |V| ({name})", sweep)
        )
    return "\n\n".join(blocks)


def fig7_subgraphs_vq(scale: int) -> str:
    """Figures 7(i)-(k): matched-subgraph counts vs |Vq|."""
    blocks = []
    for name, data in _datasets(scale).items():
        sweep = sweep_pattern_sizes(data, _vq_values(scale), seed=101)
        blocks.append(
            render_subgraph_count_figure(
                f"# matched subgraphs vs |Vq| ({name})", sweep
            )
        )
    return "\n\n".join(blocks)


def table3(scale: int) -> str:
    """Table 3: matched-subgraph size histogram."""
    from repro.core.matchplus import match_plus

    sizes_by_dataset: Dict[str, tuple] = {}
    for name, data in _datasets(scale).items():
        pattern = sample_pattern_from_data(data, 10, seed=301)
        if pattern is None:
            sizes_by_dataset[name] = ()
            continue
        result = match_plus(pattern, data)
        sizes_by_dataset[name] = tuple(sg.num_nodes for sg in result)
    return render_table3("Table 3: sizes of matched subgraphs", sizes_by_dataset)


def fig8_time_vq(scale: int) -> str:
    """Figure 8(a)-(c): time vs |Vq| (VF2 included at this small scale)."""
    data = generate_graph(scale * 2, alpha=1.2, num_labels=20, seed=19)

    def pair_for(vq, repeat):
        pattern = sample_pattern_from_data(data, int(vq), seed=401 + repeat)
        return (pattern, data) if pattern else None

    sweep = sweep_timing(
        "|Vq|", _vq_values(scale), pair_for, include_vf2=True,
        vf2_max_states=200_000,
    )
    return render_timing_figure("time (s) vs |Vq| (synthetic)", sweep)


def fig8_time_v(scale: int) -> str:
    """Figure 8(e)-(g): time vs |V|."""
    def pair_for(n, repeat):
        data = generate_graph(int(n), alpha=1.2, num_labels=20, seed=29)
        pattern = sample_pattern_from_data(data, 8, seed=441 + repeat)
        return (pattern, data) if pattern else None

    sizes = [scale // 2, scale, scale * 2]
    sweep = sweep_timing("|V|", sizes, pair_for, include_vf2=False)
    return render_timing_figure("time (s) vs |V| (synthetic)", sweep)


def incremental_updates(scale: int) -> str:
    """Section 6 scenario: amortized per-update latency under requeries."""
    from repro.experiments.performance import (
        UPDATE_STRATEGIES,
        random_insertion_stream,
    )

    data = generate_graph(scale * 2, alpha=1.15, num_labels=20, seed=71)
    pattern = sample_pattern_from_data(data, 6, seed=611)
    if pattern is None:
        return "could not sample a pattern at this scale"
    run = time_update_workload(
        pattern, data, random_insertion_stream(data, 25, seed=5)
    )
    rows = {
        "total (s)": [
            round(run.seconds[name], 4) for name in UPDATE_STRATEGIES
        ],
        "amortized per update (ms)": [
            round(run.amortized_seconds[name] * 1e3, 3)
            for name in UPDATE_STRATEGIES
        ],
    }
    table = render_table(
        f"update workload: {run.num_updates} edge insertions + Match+ "
        f"requery each (|V|={run.data_size}, |Vq|={run.pattern_size})",
        "strategy",
        list(UPDATE_STRATEGIES),
        rows,
    )
    return (
        table
        + f"\nincremental-kernel full recompiles after priming: "
        f"{run.full_compiles}"
    )


def bounded_paths(scale: int) -> str:
    """Path matching: reference BFS vs reach-index kernel (PR 8)."""
    import time

    from repro.core.bounded import BoundedPattern, bounded_simulation
    from repro.core.kernel import get_index
    from repro.core.reach import get_reach_index

    # 10 labels -> large per-label candidate sets, the regime where the
    # reference path's per-candidate BFS dominates.
    data = generate_graph(scale * 2, alpha=1.2, num_labels=10, seed=83)
    pattern = sample_pattern_from_data(data, 6, seed=811)
    if pattern is None:
        return "could not sample a pattern at this scale"
    cycle = (1, 2, 3, None)
    bounds = {
        edge: cycle[i % len(cycle)]
        for i, edge in enumerate(sorted(pattern.edges(), key=repr))
    }
    bp = BoundedPattern(pattern, bounds)

    timings = {}
    for engine in ("python", "kernel"):
        bounded_simulation(bp, data, engine=engine)  # warm-up / index build
        start = time.perf_counter()
        for _ in range(3):
            relation = bounded_simulation(bp, data, engine=engine)
        timings[engine] = (time.perf_counter() - start) / 3
        if engine == "python":
            reference_pairs = relation.pair_set()
        elif relation.pair_set() != reference_pairs:  # pragma: no cover
            return "kernel diverged from the reference — bug!"

    stats = get_index(data).stats
    ri = get_reach_index(data)
    label_entries = sum(len(d) for d in ri.out_labels) + sum(
        len(d) for d in ri.in_labels
    )
    rows = {
        "seconds/query": [round(timings[e], 4) for e in ("python", "kernel")],
        "speedup vs python": [
            "1.0x",
            f"{timings['python'] / max(timings['kernel'], 1e-9):.1f}x",
        ],
    }
    table = render_table(
        f"bounded matching (|V|={data.num_nodes}, |Vq|={pattern.num_nodes}, "
        f"mixed bounds {sorted(set(map(str, bounds.values())))}, warm index)",
        "engine",
        ["python", "kernel"],
        rows,
    )
    return (
        table
        + f"\nreach index: {label_entries} label entries, "
        f"{stats.reach_builds} build(s), {stats.reach_patches} patch(es), "
        f"{stats.reach_probes} probes"
    )


def distributed_backends(scale: int) -> str:
    """Runtime backends: wall-clock and traffic per backend (Sec. 4.3)."""
    import time

    from repro.distributed import (
        Cluster,
        bfs_partition,
        process_backend_available,
    )

    data = generate_graph(scale, alpha=1.15, num_labels=20, seed=37)
    pattern = sample_pattern_from_data(data, 6, seed=501)
    if pattern is None:
        return "could not sample a pattern at this scale"
    sites = 4
    assignment = bfs_partition(data, sites)
    backends = ["inproc", "threads"]
    if process_backend_available():
        backends.append("processes")
    rows = {"seconds": [], "fetch units": [], "subgraphs": []}
    reference = None
    for backend in backends:
        with Cluster(data, assignment, sites, backend=backend) as cluster:
            cluster.run(pattern)  # warm-up: worker bootstrap + compile
            start = time.perf_counter()
            report = cluster.run(pattern)
            rows["seconds"].append(round(time.perf_counter() - start, 4))
        rows["fetch units"].append(report.bus.units_by_kind().get("fetch", 0))
        signatures = {sg.signature() for sg in report.result}
        rows["subgraphs"].append(len(report.result))
        if reference is None:
            reference = signatures
        elif signatures != reference:  # pragma: no cover - contract break
            return f"backend {backend!r} diverged from inproc — bug!"
    return render_table(
        f"distributed runtime backends (|V|={data.num_nodes}, {sites} "
        f"sites, warm clusters; observations identical across backends)",
        "backend",
        backends,
        rows,
    )


def service_throughput(scale: int) -> str:
    """Query service: throughput and cache hit rate on a repeated stream."""
    from repro.service import MatchService, replay_workload, skewed_stream

    data = generate_graph(scale * 2, alpha=1.2, num_labels=20, seed=53)
    patterns = []
    for i, vq in enumerate((4, 6, 8)):
        pattern = sample_pattern_from_data(data, vq, seed=701 + i)
        if pattern is not None:
            patterns.append(pattern)
    if not patterns:
        return "could not sample patterns at this scale"
    stream = skewed_stream(patterns, data, rounds=3)

    rows = {"queries": [], "seconds": [], "throughput (q/s)": [],
            "cache hit rate": []}
    modes = ("cache off", "cache on")
    for mode in modes:
        cache_size = 0 if mode == "cache off" else 256
        with MatchService(max_workers=4, cache_size=cache_size) as svc:
            report, _ = replay_workload(svc, stream)
        rows["queries"].append(report.queries)
        rows["seconds"].append(round(report.seconds, 4))
        rows["throughput (q/s)"].append(round(report.throughput, 1))
        rows["cache hit rate"].append(
            f"{report.stats.cache.hit_rate:.0%}" if cache_size else "-"
        )
    return render_table(
        f"query service: {len(stream)} queries over {len(patterns)} "
        f"distinct patterns (|V|={data.num_nodes})",
        "mode",
        list(modes),
        rows,
    )


def distributed(scale: int) -> str:
    """Section 4.3: shipped units vs site count."""
    from repro.distributed import (
        bfs_partition,
        crossing_ball_bound,
        distributed_match,
        hash_partition,
    )

    data = generate_graph(scale, alpha=1.15, num_labels=20, seed=37)
    pattern = sample_pattern_from_data(data, 6, seed=501)
    if pattern is None:
        return "could not sample a pattern at this scale"
    site_counts = [2, 4]
    rows = {"hash": [], "bfs": [], "bound(bfs)": []}
    for k in site_counts:
        for name, partitioner in (("hash", hash_partition), ("bfs", bfs_partition)):
            assignment = partitioner(data, k)
            report = distributed_match(pattern, data, assignment, k)
            rows[name].append(report.data_shipment_units)
            if name == "bfs":
                rows["bound(bfs)"].append(
                    crossing_ball_bound(data, assignment, pattern.diameter)
                )
    return render_table(
        "distributed: shipped data units vs #sites", "#sites", site_counts, rows
    )


def scenario_matrix(scale: int) -> str:
    """Scenario harness: the digest-gated smoke matrix dashboard."""
    from repro.scenarios import render_cases, run_matrix

    # The scenario scales are pinned by the manifests (that is what
    # makes their digests pinnable); the numeric --scale knob picks
    # between the smoke matrix and the S matrix rather than resizing.
    matrix_scale = "smoke" if scale <= 300 else "S"
    cases = run_matrix(None, matrix_scale)
    failed = sum(
        1 for case in cases
        if case.skipped is None and case.digest_ok is False
    )
    header = (
        f"scenario matrix at scale {matrix_scale!r}: "
        f"{len(cases)} cases, {failed} digest failure(s)"
    )
    return header + "\n" + render_cases(cases)


EXPERIMENTS: Dict[str, Renderer] = {
    "fig7-closeness-vq": fig7_closeness_vq,
    "fig7-closeness-v": fig7_closeness_v,
    "fig7-subgraphs-vq": fig7_subgraphs_vq,
    "table3": table3,
    "fig8-time-vq": fig8_time_vq,
    "fig8-time-v": fig8_time_v,
    "bounded-paths": bounded_paths,
    "incremental-updates": incremental_updates,
    "distributed": distributed,
    "distributed-backends": distributed_backends,
    "service-throughput": service_throughput,
    "scenario-matrix": scenario_matrix,
}


def run_experiment(name: str, scale: int = 600) -> str:
    """Render one named experiment; raises KeyError for unknown names."""
    try:
        renderer = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r}; known: {known}") from None
    return renderer(scale)
