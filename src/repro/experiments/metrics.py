"""Quality metrics of Exp-1: closeness, match counts, match sizes.

Section 5 defines::

    closeness = #matches_subIso / #matches_found

where both quantities are *total numbers of nodes* in the matches found by
VF2 and by the algorithm under evaluation.  Since every VF2 match is also
found by Match and Sim (Proposition 1), closeness is the fraction of an
algorithm's matched nodes that exact isomorphism confirms; VF2 itself
always scores 1.  We measure node sets as unions (a node matched twice is
one node), which keeps the ratio in [0, 1] for the simulation family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.digraph import Node
from repro.core.matchrel import MatchRelation
from repro.core.result import MatchResult


@dataclass(frozen=True)
class AlgorithmOutcome:
    """Normalized per-algorithm quantities entering the Exp-1 metrics.

    Attributes
    ----------
    name:
        Display name (``VF2``, ``Match``, ``Sim``, ``TALE``, ``MCS``).
    matched_nodes:
        Union of data nodes the algorithm reports as matched.
    num_matched_subgraphs:
        Number of distinct matched subgraphs the algorithm reports
        (``None`` for Sim, which returns a single relation — the paper
        excludes it from the subgraph-count plots).
    subgraph_sizes:
        Node count of each matched subgraph (for Table 3).
    """

    name: str
    matched_nodes: frozenset
    num_matched_subgraphs: Optional[int]
    subgraph_sizes: Tuple[int, ...]


def outcome_from_match_result(result: MatchResult, name: str = "Match") -> AlgorithmOutcome:
    """Exp-1 quantities of a strong-simulation result."""
    return AlgorithmOutcome(
        name=name,
        matched_nodes=frozenset(result.matched_data_nodes()),
        num_matched_subgraphs=len(result),
        subgraph_sizes=tuple(sg.num_nodes for sg in result),
    )


def outcome_from_relation(relation: MatchRelation, name: str = "Sim") -> AlgorithmOutcome:
    """Exp-1 quantities of a plain/dual simulation relation.

    The match relation is a single object; the paper reports it as "at
    most one matched subgraph" and measures its size as the number of
    matched data nodes.
    """
    nodes = frozenset(relation.data_nodes())
    return AlgorithmOutcome(
        name=name,
        matched_nodes=nodes,
        num_matched_subgraphs=None,
        subgraph_sizes=(len(nodes),) if nodes else (),
    )


def closeness(reference_nodes: Set[Node], outcome: AlgorithmOutcome) -> float:
    """``closeness = |nodes(VF2)| / |nodes(algorithm)|`` (1.0 when both empty).

    ``reference_nodes`` is the union of nodes over the VF2 embeddings.
    An algorithm that found nothing while VF2 found nothing is perfectly
    close; one that found nothing while VF2 found something scores 0.
    """
    found = len(outcome.matched_nodes)
    reference = len(reference_nodes)
    if found == 0:
        return 1.0 if reference == 0 else 0.0
    return min(1.0, reference / found)


def size_histogram(
    sizes: Tuple[int, ...],
    bin_width: int = 10,
    num_bins: int = 5,
) -> Dict[str, int]:
    """Table 3 bins: [0,9], [10,19], ..., and a final ``>= upper`` bin."""
    bins: Dict[str, int] = {}
    for index in range(num_bins):
        low, high = index * bin_width, (index + 1) * bin_width - 1
        bins[f"[{low}, {high}]"] = 0
    upper = num_bins * bin_width
    bins[f">= {upper}"] = 0
    for size in sizes:
        if size >= upper:
            bins[f">= {upper}"] += 1
        else:
            index = size // bin_width
            low, high = index * bin_width, (index + 1) * bin_width - 1
            bins[f"[{low}, {high}]"] += 1
    return bins


def aggregate_closeness(
    reference_nodes_per_run: List[Set[Node]],
    outcomes_per_run: List[AlgorithmOutcome],
) -> float:
    """Mean closeness over several (pattern, data) runs of one algorithm."""
    if not outcomes_per_run:
        return 0.0
    total = sum(
        closeness(reference, outcome)
        for reference, outcome in zip(reference_nodes_per_run, outcomes_per_run)
    )
    return total / len(outcomes_per_run)
