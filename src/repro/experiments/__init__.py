"""Experiment harnesses reproducing the paper's Section 5 evaluation."""

from repro.experiments.metrics import (
    AlgorithmOutcome,
    aggregate_closeness,
    closeness,
    outcome_from_match_result,
    outcome_from_relation,
    size_histogram,
)
from repro.experiments.performance import (
    PERF_ALGORITHMS,
    TimingRun,
    TimingSweep,
    sweep_timing,
    time_algorithms,
)
from repro.experiments.quality import (
    ALGORITHMS,
    QualityRun,
    QualitySweep,
    run_quality,
    sweep_data_sizes,
    sweep_pattern_sizes,
)
from repro.experiments.tables import (
    render_closeness_figure,
    render_subgraph_count_figure,
    render_table,
    render_table3,
    render_timing_figure,
)

__all__ = [
    "ALGORITHMS",
    "AlgorithmOutcome",
    "PERF_ALGORITHMS",
    "QualityRun",
    "QualitySweep",
    "TimingRun",
    "TimingSweep",
    "aggregate_closeness",
    "closeness",
    "outcome_from_match_result",
    "outcome_from_relation",
    "render_closeness_figure",
    "render_subgraph_count_figure",
    "render_table",
    "render_table3",
    "render_timing_figure",
    "run_quality",
    "size_histogram",
    "sweep_data_sizes",
    "sweep_pattern_sizes",
    "sweep_timing",
    "time_algorithms",
]
