"""Plain-text renderers for the paper's tables and figure series.

Every benchmark prints its output through these helpers so that the rows
and series look like the paper's: one row per sweep point, one column per
algorithm, with the same units (closeness ratios, subgraph counts,
seconds, size-bin counts).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.metrics import size_histogram
from repro.experiments.performance import TimingSweep
from repro.experiments.quality import QualitySweep


def _format_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_table(
    title: str,
    axis_name: str,
    axis_values: Sequence,
    columns: Dict[str, Sequence],
) -> str:
    """A fixed-width table: axis column plus one column per series."""
    names = list(columns)
    header = [axis_name] + names
    rows: List[List[str]] = []
    for index, axis_value in enumerate(axis_values):
        row = [_format_cell(axis_value)]
        for name in names:
            series = columns[name]
            row.append(_format_cell(series[index] if index < len(series) else None))
        rows.append(row)
    widths = [
        max(len(header[col]), *(len(row[col]) for row in rows)) if rows else len(header[col])
        for col in range(len(header))
    ]
    lines = [title]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_closeness_figure(title: str, sweep: QualitySweep) -> str:
    """Render one of Figures 7(c)–(h): closeness vs the swept axis."""
    return render_table(
        title,
        sweep.axis_name,
        sweep.axis_values,
        {name: values for name, values in sweep.closeness_series().items()},
    )


def render_subgraph_count_figure(title: str, sweep: QualitySweep) -> str:
    """Render one of Figures 7(i)–(n): matched-subgraph counts."""
    return render_table(
        title,
        sweep.axis_name,
        sweep.axis_values,
        {name: values for name, values in sweep.subgraph_count_series().items()},
    )


def render_timing_figure(title: str, sweep: TimingSweep) -> str:
    """Render one of Figures 8(a)–(h): seconds vs the swept axis."""
    return render_table(
        title,
        sweep.axis_name,
        sweep.axis_values,
        {name: values for name, values in sweep.series().items()},
    )


def render_table3(
    title: str,
    sizes_by_dataset: Dict[str, Sequence[int]],
    bin_width: int = 10,
    num_bins: int = 5,
) -> str:
    """Render Table 3: matched-subgraph size histogram per dataset."""
    datasets = list(sizes_by_dataset)
    histograms = {
        name: size_histogram(tuple(sizes), bin_width, num_bins)
        for name, sizes in sizes_by_dataset.items()
    }
    bins = list(next(iter(histograms.values()))) if histograms else []
    columns: Dict[str, List[int]] = {
        name: [histograms[name][bin_label] for bin_label in bins]
        for name in datasets
    }
    return render_table(title, "#nodes", bins, columns)
