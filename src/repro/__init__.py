"""repro — strong simulation for graph pattern matching.

A from-scratch reproduction of:

    Shuai Ma, Yang Cao, Wenfei Fan, Jinpeng Huai, Tianyu Wo.
    "Capturing Topology in Graph Pattern Matching."
    PVLDB 5(4): 310-321, 2011.

Public API highlights
---------------------
* :class:`repro.DiGraph` / :class:`repro.Pattern` — the data model;
* :func:`repro.match` — strong simulation (algorithm ``Match``);
* :func:`repro.match_plus` — the optimized ``Match+``;
* :func:`repro.graph_simulation` / :func:`repro.dual_simulation` — the
  weaker matching notions;
* :mod:`repro.baselines` — VF2 / Ullmann / TALE / MCS comparators;
* :mod:`repro.distributed` — the distributed evaluation of Section 4.3;
* :mod:`repro.datasets` — synthetic and surrogate real-life generators.

Quickstart
----------
>>> from repro import DiGraph, Pattern, match
>>> g = DiGraph.from_parts(
...     {"hr": "HR", "se": "SE", "bio": "Bio"},
...     [("hr", "se"), ("hr", "bio"), ("se", "bio")],
... )
>>> q = Pattern.build(
...     {"h": "HR", "b": "Bio"},
...     [("h", "b")],
... )
>>> result = match(q, g)
>>> sorted(result.all_matches_of("b"))
['bio']
"""

from repro.core import (
    Ball,
    BoundedPattern,
    DiGraph,
    MatchPlusOptions,
    MatchRelation,
    MatchResult,
    Pattern,
    PerfectSubgraph,
    bounded_simulation,
    dual_simulation,
    dual_simulation_kernel,
    graph_simulation,
    match,
    match_plus,
    matches_via_dual_simulation,
    matches_via_simulation,
    matches_via_strong_simulation,
    minimize_pattern,
)
from repro.exceptions import (
    DatasetError,
    DistributedError,
    GraphError,
    MatchingError,
    PatternError,
    ReproError,
)
from repro.service import (
    CacheStats,
    MatchService,
    Query,
    ResultCache,
    pattern_fingerprint,
)

__version__ = "1.0.0"

__all__ = [
    "Ball",
    "BoundedPattern",
    "CacheStats",
    "DatasetError",
    "DiGraph",
    "DistributedError",
    "GraphError",
    "MatchPlusOptions",
    "MatchRelation",
    "MatchResult",
    "MatchService",
    "MatchingError",
    "Pattern",
    "PatternError",
    "PerfectSubgraph",
    "Query",
    "ReproError",
    "ResultCache",
    "__version__",
    "bounded_simulation",
    "dual_simulation",
    "dual_simulation_kernel",
    "graph_simulation",
    "match",
    "match_plus",
    "matches_via_dual_simulation",
    "matches_via_simulation",
    "matches_via_strong_simulation",
    "minimize_pattern",
    "pattern_fingerprint",
]
