"""The paper's synthetic generator: ``n`` nodes, ``n^α`` edges, ``l`` labels.

Section 5 (Experimental setting): "the generator produces a graph with n
nodes, n^α edges, and the nodes are labeled from a set of l labels", with
defaults ``l = 200`` and ``α = 1.2``.  The paper used graph-tool; this is
a from-scratch seeded equivalent honouring the same ``(n, α, l)``
contract: edges are uniform random distinct ordered pairs (no self-loops),
labels are uniform over the label alphabet.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.digraph import DiGraph
from repro.exceptions import DatasetError
from repro.utils.rng import rng_from_seed

DEFAULT_ALPHA = 1.2
DEFAULT_NUM_LABELS = 200


def edge_count_for(n: int, alpha: float) -> int:
    """``round(n^α)`` clamped to the simple-digraph maximum ``n(n-1)``."""
    if n <= 1:
        return 0
    return min(int(round(n ** alpha)), n * (n - 1))


def label_alphabet(num_labels: int) -> List[str]:
    """The canonical label alphabet ``L000 … L{num_labels-1}``."""
    return [f"L{index:03d}" for index in range(num_labels)]


def generate_graph(
    n: int,
    alpha: float = DEFAULT_ALPHA,
    num_labels: int = DEFAULT_NUM_LABELS,
    seed: int = 0,
    labels: Optional[Sequence[str]] = None,
) -> DiGraph:
    """Generate a synthetic data graph per the paper's ``(n, α, l)`` contract.

    Parameters
    ----------
    n:
        Number of nodes (positive).
    alpha:
        Density exponent; the edge count is ``round(n^α)``.
    num_labels:
        Size of the label alphabet ``l`` (ignored when ``labels`` given).
    seed:
        RNG seed; identical arguments produce identical graphs.
    labels:
        Optional explicit label alphabet to draw from uniformly.

    Returns
    -------
    DiGraph
        A simple directed graph with ``n`` nodes and ``round(n^α)``
        distinct edges (no self-loops).
    """
    if n <= 0:
        raise DatasetError(f"n must be positive, got {n}")
    if alpha < 1.0:
        raise DatasetError(f"alpha must be >= 1.0, got {alpha}")
    if labels is None:
        if num_labels <= 0:
            raise DatasetError(f"num_labels must be positive, got {num_labels}")
        labels = label_alphabet(num_labels)

    label_rng = rng_from_seed(seed, "labels")
    edge_rng = rng_from_seed(seed, "edges")

    graph = DiGraph()
    for node in range(n):
        graph.add_node(node, label_rng.choice(labels))

    target_edges = edge_count_for(n, alpha)
    # Rejection sampling of distinct ordered pairs; at the paper's
    # densities (alpha <= 1.35) collisions are rare, so this stays O(m).
    while graph.num_edges < target_edges:
        source = edge_rng.randrange(n)
        target = edge_rng.randrange(n)
        if source != target:
            graph.add_edge(source, target)
    return graph
