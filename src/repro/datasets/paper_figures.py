"""The paper's running examples as executable fixtures.

Every pattern/data graph pair the paper reasons about is reconstructed
here so the test suite can assert the *exact* claims made in the text:

* Figure 1 — the headhunter example (``Q1``/``G1``): simulation matches
  all four biologists, strong simulation only ``Bio4``;
* Figure 2 — the book (``Q2``/``G2``), mutual-recommendation
  (``Q3``/``G3``) and citation (``Q4``/``G4``) examples;
* Figure 6(a) — the minimization example ``Q5`` (Example 4);
* Figure 6(b) — the dual-filtering example ``Q6``/``G6`` (Example 5);
* Figure 6(c) — the connectivity-pruning example ``Q7``/``G7``
  (Example 6);
* Figures 7(a)/(b) — the real-life patterns ``QA`` (Amazon) and ``QY``
  (YouTube).

Where the original figures are only partially specified by the text
(exact edges of ``G6``/``G7`` are in unrenderable figure art), the
reconstruction preserves every property the text asserts; the docstrings
note the reconstruction choices.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.digraph import DiGraph
from repro.core.pattern import Pattern


# ----------------------------------------------------------------------
# Figure 1 — the headhunter example
# ----------------------------------------------------------------------
def pattern_q1() -> Pattern:
    """``Q1``: the biologist-search pattern of Fig. 1 (diameter 3).

    Bio must be recommended by an HR, an SE and a DM; the SE is
    recommended by an HR; an AI recommends the DM and is recommended by a
    DM (the AI/DM directed 2-cycle).
    """
    return Pattern.build(
        {"HR": "HR", "SE": "SE", "Bio": "Bio", "DM": "DM", "AI": "AI"},
        [
            ("HR", "Bio"),
            ("SE", "Bio"),
            ("DM", "Bio"),
            ("HR", "SE"),
            ("AI", "DM"),
            ("DM", "AI"),
        ],
    )


def data_g1(cycle_length: int = 3) -> DiGraph:
    """``G1``: the expertise-recommendation network of Fig. 1.

    Three connected components:

    1. a tree rooted at ``HR1``: ``HR1 → SE1``, ``HR1 → Bio1``,
       ``SE1 → Bio2`` (Bio1 recommended by HR only, Bio2 by SE only);
    2. the long AI/DM directed cycle ``AI_1 → DM_1 → AI_2 → … → AI_1``
       with each ``DM_i`` also recommending ``Bio3``
       (``cycle_length`` controls ``k``, the number of AI/DM pairs);
    3. the component of ``Bio4`` — the only strong-simulation match:
       ``HR2 → SE2``, ``HR2 → Bio4``, ``SE2 → Bio4``,
       ``DM'_1 → Bio4``, ``DM'_2 → Bio4``, and the directed 4-cycle
       ``AI'_1 → DM'_1 → AI'_2 → DM'_2 → AI'_1``.  The 4-cycle (rather
       than two 2-cycles) matters: the paper states that *no* directed
       cycle of ``G1`` is isomorphic to the 2-cycle ``DM, AI, DM`` of
       ``Q1``, yet dual simulation still holds on the component (every
       AI' has a DM' parent and child, and vice versa).
    """
    graph = DiGraph()
    # Component 1: the HR1 tree.
    graph.add_node("HR1", "HR")
    graph.add_node("SE1", "SE")
    graph.add_node("Bio1", "Bio")
    graph.add_node("Bio2", "Bio")
    graph.add_edge("HR1", "SE1")
    graph.add_edge("HR1", "Bio1")
    graph.add_edge("SE1", "Bio2")

    # Component 2: long alternating AI/DM cycle plus Bio3.
    graph.add_node("Bio3", "Bio")
    for i in range(1, cycle_length + 1):
        graph.add_node(f"AI{i}", "AI")
        graph.add_node(f"DM{i}", "DM")
    for i in range(1, cycle_length + 1):
        graph.add_edge(f"AI{i}", f"DM{i}")
        nxt = 1 if i == cycle_length else i + 1
        graph.add_edge(f"DM{i}", f"AI{nxt}")
        graph.add_edge(f"DM{i}", "Bio3")

    # Component 3: the good candidate Bio4.
    graph.add_node("HR2", "HR")
    graph.add_node("SE2", "SE")
    graph.add_node("Bio4", "Bio")
    graph.add_node("DM'1", "DM")
    graph.add_node("DM'2", "DM")
    graph.add_node("AI'1", "AI")
    graph.add_node("AI'2", "AI")
    graph.add_edge("HR2", "SE2")
    graph.add_edge("HR2", "Bio4")
    graph.add_edge("SE2", "Bio4")
    graph.add_edge("DM'1", "Bio4")
    graph.add_edge("DM'2", "Bio4")
    graph.add_edge("AI'1", "DM'1")
    graph.add_edge("DM'1", "AI'2")
    graph.add_edge("AI'2", "DM'2")
    graph.add_edge("DM'2", "AI'1")
    return graph


def g1_good_component_nodes() -> frozenset:
    """Node set of the connected component of ``Bio4`` in ``G1``."""
    return frozenset({"HR2", "SE2", "Bio4", "DM'1", "DM'2", "AI'1", "AI'2"})


# ----------------------------------------------------------------------
# Figure 2 — Q2/G2, Q3/G3, Q4/G4
# ----------------------------------------------------------------------
def pattern_q2() -> Pattern:
    """``Q2``: a book recommended by both students (ST) and teachers (TE)."""
    return Pattern.build(
        {"ST": "ST", "TE": "TE", "B": "book"},
        [("ST", "B"), ("TE", "B")],
    )


def data_g2() -> DiGraph:
    """``G2``: ``book1`` recommended by a student only; ``book2`` by both.

    Reconstruction: one student recommending both books, two teachers
    recommending ``book2`` — so VF2 finds two matched subgraphs
    (``G2,1``/``G2,2``, one per teacher) while strong simulation returns a
    single match graph containing only ``book2``.
    """
    return DiGraph.from_parts(
        {
            "ST1": "ST",
            "TE1": "TE",
            "TE2": "TE",
            "book1": "book",
            "book2": "book",
        },
        [
            ("ST1", "book1"),
            ("ST1", "book2"),
            ("TE1", "book2"),
            ("TE2", "book2"),
        ],
    )


def pattern_q3() -> Pattern:
    """``Q3``: two people (both labeled P) recommending each other."""
    return Pattern.build(
        {"P": "P", "P'": "P"},
        [("P", "P'"), ("P'", "P")],
    )


def data_g3() -> DiGraph:
    """``G3``: mutual pairs ``P1 ⇄ P2`` and ``P2 ⇄ P3``; ``P4`` dangling.

    ``P4`` recommends ``P1`` and is recommended by ``P3`` — enough to
    survive (dual) simulation on the whole graph, but in the radius-1 ball
    around ``P4`` no 2-cycle exists, so strong simulation excludes it
    (the locality argument of Example 2(5)).
    """
    return DiGraph.from_parts(
        {"P1": "P", "P2": "P", "P3": "P", "P4": "P"},
        [
            ("P1", "P2"),
            ("P2", "P1"),
            ("P2", "P3"),
            ("P3", "P2"),
            ("P4", "P1"),
            ("P3", "P4"),
        ],
    )


def pattern_q4() -> Pattern:
    """``Q4``: a db paper citing an SN paper and a graph-theory paper."""
    return Pattern.build(
        {"db": "db", "SN": "SN", "graph": "graph"},
        [("db", "SN"), ("db", "graph")],
    )


def data_g4() -> DiGraph:
    """``G4``: ``SN1``/``SN2`` properly cited; ``SN3``/``SN4`` excessive.

    ``db1``/``db2`` cite their SN papers and *both* graph papers, giving
    VF2 the four matched subgraphs ``G4,i,j``; ``db3`` cites ``SN3`` but no
    graph paper; ``SN4`` is cited by ``db4`` which cites nothing else.
    Simulation still matches all four SN papers (an SN node has no
    outgoing pattern constraints); duality eliminates ``SN3``/``SN4``.
    """
    return DiGraph.from_parts(
        {
            "db1": "db",
            "db2": "db",
            "db3": "db",
            "db4": "db",
            "SN1": "SN",
            "SN2": "SN",
            "SN3": "SN",
            "SN4": "SN",
            "graph1": "graph",
            "graph2": "graph",
        },
        [
            ("db1", "SN1"),
            ("db2", "SN2"),
            ("db1", "graph1"),
            ("db1", "graph2"),
            ("db2", "graph1"),
            ("db2", "graph2"),
            ("db3", "SN3"),
            ("db4", "SN4"),
        ],
    )


# ----------------------------------------------------------------------
# Figure 6(a) — query minimization (Example 4)
# ----------------------------------------------------------------------
def pattern_q5() -> Pattern:
    """``Q5``: the minimization example with duplicated B/C/D branches.

    Two structurally identical branches ``R → B_i → C_i → D_i`` plus an
    ``R → A`` edge; ``minQ`` collapses the branches, yielding the 5-node
    quotient of Example 4 (classes {R}, {A}, {B1,B2}, {C1,C2}, {D1,D2}).
    """
    return Pattern.build(
        {
            "R": "R",
            "A": "A",
            "B1": "B",
            "B2": "B",
            "C1": "C",
            "C2": "C",
            "D1": "D",
            "D2": "D",
        },
        [
            ("R", "A"),
            ("R", "B1"),
            ("R", "B2"),
            ("B1", "C1"),
            ("B2", "C2"),
            ("C1", "D1"),
            ("C2", "D2"),
        ],
    )


# ----------------------------------------------------------------------
# Figure 6(b) — dual-simulation filtering (Example 5)
# ----------------------------------------------------------------------
def pattern_q6() -> Pattern:
    """``Q6``: a three-node chain ``A → B → C`` (reconstruction).

    The published figure is partially unreadable; the chain preserves the
    phenomenon of Example 5: the global dual-simulation relation excludes
    ``A1``/``B1``, so dualFilter does real work only in the balls around
    the excluded region.
    """
    return Pattern.build(
        {"A": "A", "B": "B", "C": "C"},
        [("A", "B"), ("B", "C")],
    )


def data_g6() -> DiGraph:
    """``G6``: ``A1 → B1`` dangling; ``A2 → B2 → C0`` and ``A3 → B3 → C0``.

    Global dual simulation keeps ``{A2, A3, B2, B3, C0}`` and drops
    ``A1``/``B1`` (no C below them) — mirroring Example 5 where
    ``sim(A) = {A2, A3}``, ``sim(B) = {B2, B3}``, ``sim(C) = {C}``.
    The components are connected through ``C0`` so ball projections stay
    non-trivial.
    """
    return DiGraph.from_parts(
        {
            "A1": "A",
            "B1": "B",
            "A2": "A",
            "B2": "B",
            "A3": "A",
            "B3": "B",
            "C0": "C",
        },
        [
            ("A1", "B1"),
            ("A2", "B2"),
            ("B2", "C0"),
            ("A3", "B3"),
            ("B3", "C0"),
        ],
    )


# ----------------------------------------------------------------------
# Figure 6(c) — connectivity pruning (Example 6)
# ----------------------------------------------------------------------
def pattern_q7() -> Pattern:
    """``Q7``: an alternating A/B chain with diameter exceeding ``G7``'s.

    Six nodes ``A→B→A→B→A→B`` (diameter 5), so with ``d_Q7 > d_G7`` every
    ball equals ``G7`` itself, as in Example 6.
    """
    return Pattern.build(
        {
            "a1": "A",
            "b1": "B",
            "a2": "A",
            "b2": "B",
            "a3": "A",
            "b3": "B",
        },
        [
            ("a1", "b1"),
            ("b1", "a2"),
            ("a2", "b2"),
            ("b2", "a3"),
            ("a3", "b3"),
        ],
    )


def data_g7() -> DiGraph:
    """``G7``: two A/B pockets joined by a foreign-labeled bridge.

    ``A1 → B1`` and ``A2 → B2`` are connected only through ``X`` (label
    ``C``, absent from ``Q7``), so the candidate-induced subgraph has two
    components ``SC1 = {A1, B1}`` and ``SC2 = {A2, B2}`` — the setting of
    Example 6 where pruning removes the component not containing the ball
    center.  Diameter 4 < d_Q7 = 5, so every ball is all of ``G7``.
    """
    return DiGraph.from_parts(
        {"A1": "A", "B1": "B", "X": "C", "A2": "A", "B2": "B"},
        [
            ("A1", "B1"),
            ("B1", "X"),
            ("X", "B2"),
            ("A2", "B2"),
        ],
    )


# ----------------------------------------------------------------------
# Figures 7(a)/(b) — the real-life case-study patterns
# ----------------------------------------------------------------------
def pattern_qa() -> Pattern:
    """``QA``: the Amazon case-study pattern of Fig. 7(a).

    A "Parenting & Families" book co-purchased with "Children's Books",
    "Home & Garden" and — mutually — "Health, Mind & Body" books.
    """
    return Pattern.build(
        {
            "PF": "Parenting&Families",
            "CB": "Children'sBooks",
            "HG": "Home&Garden",
            "HMB": "Health,Mind&Body",
        },
        [
            ("PF", "CB"),
            ("PF", "HG"),
            ("PF", "HMB"),
            ("HMB", "PF"),
        ],
    )


def pattern_qy() -> Pattern:
    """``QY``: the YouTube case-study pattern of Fig. 7(b).

    An "Entertainment" video related to "Film&Animation" and "Music"
    videos, with a "Sports" video related to the same two.
    """
    return Pattern.build(
        {
            "E": "Entertainment",
            "F": "Film&Animation",
            "M": "Music",
            "S": "Sports",
        },
        [
            ("E", "F"),
            ("E", "M"),
            ("S", "F"),
            ("S", "M"),
        ],
    )


def all_fixture_pairs() -> Tuple[Tuple[str, Pattern, DiGraph], ...]:
    """All (name, pattern, data) fixture pairs with concrete data graphs."""
    return (
        ("fig1", pattern_q1(), data_g1()),
        ("fig2_books", pattern_q2(), data_g2()),
        ("fig2_people", pattern_q3(), data_g3()),
        ("fig2_papers", pattern_q4(), data_g4()),
        ("fig6b", pattern_q6(), data_g6()),
        ("fig6c", pattern_q7(), data_g7()),
    )
