"""Pattern-graph generators for the experiments.

Section 5 generates pattern graphs with the same ``(n, α, l)`` generator
as data graphs (``|Vq|`` from 2 to 20, density ``αq`` from 1.05 to 1.35).
Two generators are provided:

* :func:`generate_pattern` — the paper's contract: a random *connected*
  pattern with ``|Vq|`` nodes and ``round(|Vq|^αq)`` edges, labels drawn
  from a given alphabet.  Connectivity (assumed by the paper, Section 2.1)
  is ensured by seeding with a random spanning tree whose edges get random
  orientations.

* :func:`sample_pattern_from_data` — samples a connected subgraph of a
  *data graph* and uses it (with its labels) as the pattern.  Patterns
  built this way are guaranteed to have at least one subgraph-isomorphism
  match in the data, which keeps the closeness metric of Exp-1 well
  defined across the whole ``|Vq|`` sweep, as it implicitly was in the
  paper's hand-designed and real-life-derived patterns.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.digraph import DiGraph
from repro.core.pattern import Pattern
from repro.datasets.synthetic import edge_count_for
from repro.exceptions import DatasetError
from repro.utils.rng import rng_from_seed


def generate_pattern(
    num_nodes: int,
    alpha: float = 1.2,
    labels: Sequence[str] = (),
    seed: int = 0,
) -> Pattern:
    """A random connected pattern with ``round(num_nodes^alpha)`` edges.

    A spanning tree guarantees undirected connectivity; each tree edge is
    oriented uniformly at random, then extra random edges are added until
    the target count (clamped to the simple-digraph maximum) is reached.
    """
    if num_nodes <= 0:
        raise DatasetError(f"num_nodes must be positive, got {num_nodes}")
    if not labels:
        raise DatasetError("a non-empty label alphabet is required")
    rng = rng_from_seed(seed, "pattern")

    graph = DiGraph()
    for node in range(num_nodes):
        graph.add_node(node, rng.choice(list(labels)))

    # Random spanning tree: attach each node past the first to a random
    # earlier node, orienting the edge at random.
    for node in range(1, num_nodes):
        anchor = rng.randrange(node)
        if rng.random() < 0.5:
            graph.add_edge(anchor, node)
        else:
            graph.add_edge(node, anchor)

    target_edges = max(edge_count_for(num_nodes, alpha), graph.num_edges)
    attempts = 0
    max_attempts = 50 * max(target_edges, 1)
    while graph.num_edges < target_edges and attempts < max_attempts:
        attempts += 1
        source = rng.randrange(num_nodes)
        target = rng.randrange(num_nodes)
        if source != target:
            graph.add_edge(source, target)
    return Pattern(graph)


def sample_pattern_from_data(
    data: DiGraph,
    num_nodes: int,
    seed: int = 0,
    extra_edge_fraction: float = 0.0,
) -> Optional[Pattern]:
    """Sample a connected ``num_nodes``-node subgraph of ``data`` as a pattern.

    A random node seeds a randomized BFS over undirected neighbors until
    ``num_nodes`` nodes are collected; the induced subgraph (with original
    labels) becomes the pattern.  Returns ``None`` when no connected
    subgraph of the requested size exists around any of a bounded number
    of restarts.

    ``extra_edge_fraction`` is accepted for signature parity with
    :func:`generate_pattern` but ignored: an induced subgraph already
    carries all its internal edges.
    """
    if num_nodes <= 0:
        raise DatasetError(f"num_nodes must be positive, got {num_nodes}")
    if data.num_nodes < num_nodes:
        return None
    rng = rng_from_seed(seed, "sample-pattern")
    nodes = list(data.nodes())

    for _ in range(32):  # bounded restarts
        start = rng.choice(nodes)
        selected = [start]
        selected_set = {start}
        frontier = [start]
        while frontier and len(selected) < num_nodes:
            node = frontier.pop(rng.randrange(len(frontier)))
            neighbors = [
                n for n in data.neighbors(node) if n not in selected_set
            ]
            rng.shuffle(neighbors)
            for neighbor in neighbors:
                if len(selected) >= num_nodes:
                    break
                selected_set.add(neighbor)
                selected.append(neighbor)
                frontier.append(neighbor)
        if len(selected) == num_nodes:
            induced = data.subgraph(selected_set)
            # Relabel nodes to q0..q{k-1} so pattern node ids never clash
            # with data node ids in caller bookkeeping.
            pattern_graph = DiGraph()
            rename = {node: f"q{index}" for index, node in enumerate(selected)}
            for node in selected:
                pattern_graph.add_node(rename[node], induced.label(node))
            for source, target in induced.edges():
                pattern_graph.add_edge(rename[source], rename[target])
            return Pattern(pattern_graph)
    return None


def pattern_suite_for_data(
    data: DiGraph,
    sizes: Sequence[int],
    seed: int = 0,
) -> List[Pattern]:
    """One data-derived pattern per requested size (skipping failures)."""
    patterns: List[Pattern] = []
    for index, size in enumerate(sizes):
        pattern = sample_pattern_from_data(data, size, seed=seed + index)
        if pattern is not None:
            patterns.append(pattern)
    return patterns
