"""Dataset generators: synthetic, surrogates, and the paper's figures."""

from repro.datasets.amazon import amazon_label_alphabet, generate_amazon
from repro.datasets.patterns import (
    generate_pattern,
    pattern_suite_for_data,
    sample_pattern_from_data,
)
from repro.datasets.synthetic import (
    DEFAULT_ALPHA,
    DEFAULT_NUM_LABELS,
    edge_count_for,
    generate_graph,
    label_alphabet,
)
from repro.datasets.youtube import generate_youtube, youtube_label_alphabet
from repro.datasets import paper_figures

__all__ = [
    "DEFAULT_ALPHA",
    "DEFAULT_NUM_LABELS",
    "amazon_label_alphabet",
    "edge_count_for",
    "generate_amazon",
    "generate_graph",
    "generate_pattern",
    "generate_youtube",
    "label_alphabet",
    "paper_figures",
    "pattern_suite_for_data",
    "sample_pattern_from_data",
    "youtube_label_alphabet",
]
