"""Amazon co-purchase surrogate network.

The paper's Amazon dataset (SNAP ``amazon0601``-family snapshot: 548,552
products, 1,788,725 directed co-purchase edges) is unavailable offline;
this generator builds a *surrogate* preserving the properties the
experiments actually exercise — see DESIGN.md §4:

* sparse directed graph, density α ≈ 1.1–1.2 (avg out-degree ≈ 3);
* heavy-tailed in-degree (popular products), via preferential attachment;
* category labels with a Zipf-like skew (book categories follow a long
  tail), drawn from a configurable alphabet that includes the categories
  of the Fig. 7(a) case-study pattern so the ``QA`` example has matches;
* moderate edge reciprocity ("co-purchased ... and vice versa").
"""

from __future__ import annotations

from typing import List

from repro.core.digraph import DiGraph
from repro.exceptions import DatasetError
from repro.utils.rng import rng_from_seed

#: Categories named by the Fig. 7(a) case study, always present in the
#: alphabet so pattern ``QA`` is expressible.
CASE_STUDY_CATEGORIES = (
    "Parenting&Families",
    "Children'sBooks",
    "Home&Garden",
    "Health,Mind&Body",
)


def amazon_label_alphabet(num_labels: int) -> List[str]:
    """Category alphabet: the case-study categories plus generic ones."""
    if num_labels < len(CASE_STUDY_CATEGORIES):
        raise DatasetError(
            f"num_labels must be >= {len(CASE_STUDY_CATEGORIES)}"
        )
    generic = [
        f"Category{index:03d}"
        for index in range(num_labels - len(CASE_STUDY_CATEGORIES))
    ]
    return list(CASE_STUDY_CATEGORIES) + generic


def _zipf_weights(count: int, exponent: float) -> List[float]:
    """Zipf-like label weights ``1/rank^exponent``."""
    return [1.0 / (rank ** exponent) for rank in range(1, count + 1)]


def generate_amazon(
    n: int,
    num_labels: int = 50,
    out_degree: int = 3,
    reciprocity: float = 0.15,
    zipf_exponent: float = 0.8,
    seed: int = 0,
) -> DiGraph:
    """Generate the Amazon surrogate.

    Parameters
    ----------
    n:
        Number of product nodes.
    num_labels:
        Category-alphabet size (the paper fixes ``l = 200`` on the 548k
        graph; scale proportionally for smaller ``n`` so label frequencies
        stay in the same regime).
    out_degree:
        Co-purchase edges added per arriving product (the real snapshot
        averages ≈ 3.3).
    reciprocity:
        Probability of also adding the reverse edge — "people who buy x
        buy y" often holds both ways.
    zipf_exponent:
        Skew of the category distribution.
    seed:
        RNG seed.
    """
    if n <= 0:
        raise DatasetError(f"n must be positive, got {n}")
    labels = amazon_label_alphabet(num_labels)
    weights = _zipf_weights(len(labels), zipf_exponent)
    label_rng = rng_from_seed(seed, "amazon-labels")
    edge_rng = rng_from_seed(seed, "amazon-edges")

    graph = DiGraph()
    # ``attachment`` holds one entry per incident edge endpoint, so
    # sampling from it is degree-preferential (Barabási–Albert style).
    attachment: List[int] = []
    for node in range(n):
        graph.add_node(node, label_rng.choices(labels, weights=weights)[0])
        if node == 0:
            attachment.append(0)
            continue
        edges_to_add = min(out_degree, node)
        chosen = set()
        while len(chosen) < edges_to_add:
            target = attachment[edge_rng.randrange(len(attachment))]
            if target != node:
                chosen.add(target)
        for target in chosen:
            graph.add_edge(node, target)
            attachment.append(node)
            attachment.append(target)
            if edge_rng.random() < reciprocity:
                graph.add_edge(target, node)
                attachment.append(node)
                attachment.append(target)
    return graph
