"""YouTube related-video surrogate network.

The paper's YouTube dataset (155,513 videos, 3,110,120 related-video
edges — average out-degree ≈ 20) is unavailable offline; this surrogate
preserves what the experiments exercise (DESIGN.md §4):

* a markedly denser graph than the Amazon surrogate;
* high reciprocity ("related videos" is nearly symmetric on YouTube);
* video-category labels from a small, skewed alphabet — YouTube's
  category vocabulary is tiny compared to Amazon's, and the Fig. 7(b)
  case-study categories are always present so pattern ``QY`` is
  expressible.
"""

from __future__ import annotations

from typing import List

from repro.core.digraph import DiGraph
from repro.exceptions import DatasetError
from repro.utils.rng import rng_from_seed

#: Categories named by the Fig. 7(b) case study.
CASE_STUDY_CATEGORIES = (
    "Entertainment",
    "Film&Animation",
    "Music",
    "Sports",
)

#: The (approximate) real YouTube category vocabulary beyond the case study.
EXTRA_CATEGORIES = (
    "Comedy",
    "News&Politics",
    "People&Blogs",
    "Howto&Style",
    "Pets&Animals",
    "Travel&Events",
    "Autos&Vehicles",
    "Education",
    "Science&Technology",
    "Gaming",
    "Nonprofits&Activism",
)


def youtube_label_alphabet(num_labels: int = 15) -> List[str]:
    """Video-category alphabet (case-study categories first)."""
    alphabet = list(CASE_STUDY_CATEGORIES) + list(EXTRA_CATEGORIES)
    if num_labels < len(CASE_STUDY_CATEGORIES):
        raise DatasetError(
            f"num_labels must be >= {len(CASE_STUDY_CATEGORIES)}"
        )
    if num_labels <= len(alphabet):
        return alphabet[:num_labels]
    extra = [
        f"Channel{index:02d}" for index in range(num_labels - len(alphabet))
    ]
    return alphabet + extra


def generate_youtube(
    n: int,
    num_labels: int = 15,
    out_degree: int = 6,
    reciprocity: float = 0.5,
    zipf_exponent: float = 0.6,
    seed: int = 0,
) -> DiGraph:
    """Generate the YouTube surrogate (denser, highly reciprocal).

    Same preferential-attachment scheme as the Amazon surrogate, with a
    higher per-node ``out_degree`` and ``reciprocity`` matching the
    related-video semantics.
    """
    if n <= 0:
        raise DatasetError(f"n must be positive, got {n}")
    labels = youtube_label_alphabet(num_labels)
    weights = [1.0 / (rank ** zipf_exponent) for rank in range(1, len(labels) + 1)]
    label_rng = rng_from_seed(seed, "youtube-labels")
    edge_rng = rng_from_seed(seed, "youtube-edges")

    graph = DiGraph()
    attachment: List[int] = []
    for node in range(n):
        graph.add_node(node, label_rng.choices(labels, weights=weights)[0])
        if node == 0:
            attachment.append(0)
            continue
        edges_to_add = min(out_degree, node)
        chosen = set()
        while len(chosen) < edges_to_add:
            target = attachment[edge_rng.randrange(len(attachment))]
            if target != node:
                chosen.add(target)
        for target in chosen:
            graph.add_edge(node, target)
            attachment.append(node)
            attachment.append(target)
            if edge_rng.random() < reciprocity:
                graph.add_edge(target, node)
                attachment.append(node)
                attachment.append(target)
    return graph
