"""The query service: a concurrent matching façade over the engines.

:class:`MatchService` turns the library's one-shot entry points into a
serving layer:

* :meth:`MatchService.submit` runs one query on a thread pool and
  returns a :class:`concurrent.futures.Future`;
  :meth:`MatchService.submit_batch` fans a query stream out over the
  pool; :meth:`MatchService.query` is the synchronous convenience.
* Structurally identical queries share one cache entry: patterns are
  canonicalized (:mod:`repro.service.fingerprint`) and results are
  cached **in canonical-position encoding**
  (:class:`~repro.service.cache.ResultCache`), so a hit can be replayed
  under any isomorphic pattern's node names.  Replay is sound because
  matching results are invariant under pattern isomorphism: for any
  isomorphism ``σ: Q1 -> Q2``, the maximum (dual) simulation satisfies
  ``sim_Q2(σ(u)) = sim_Q1(u)``, and the canonical position maps provide
  exactly such a ``σ`` when two canonical keys are equal.
* The cache subscribes to each data graph's delta stream and keeps
  entries alive across mutations that provably cannot affect them (see
  :mod:`repro.service.cache` for the rules), so an update-heavy workload
  retains its warm entries for untouched label classes.

Thread-safety contract of the kernel read path (audited for this layer):
a compiled :class:`~repro.core.kernel.GraphIndex` is **safe for
concurrent queries** — CSR rows and label groups are only mutated by
``get_index`` syncs (serialized by the kernel's per-graph index locks),
and the per-ball visited epochs live in per-thread buffers
(:meth:`~repro.core.kernel.GrowableCSRIndex.visit_state`).  Mutating a
data graph **while queries on it are in flight** is handled by the
index's reader–writer guard: a query holds the index in read mode for
its whole run, and a concurrent ``get_index`` sync (triggered by
another thread's post-mutation query) blocks until every in-flight
reader drains before rewriting rows — so readers never observe a
half-applied sync.  A query whose **own** thread observes the mutation
mid-flight still fails loud with
:class:`~repro.exceptions.MatchingError` (version check), as does a
sync attempted from a thread that is itself mid-query (self-deadlock
refusal).  Quiescing queries around mutations remains the designed
high-throughput path; the guard makes the racy path safe, not fast.
(The result *cache* stays sound regardless: lookups are version-gated
and a store whose pre-compute version has moved is refused.)

Results are observation-identical to direct engine calls — with the
cache hot or cold, across engines, and under interleaved mutations —
asserted by ``tests/test_service.py`` in the ``tests/engines.py``
differential style.
"""

from __future__ import annotations

import threading
import weakref
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.bounded import bounded_simulation
from repro.core.digraph import DiGraph
from repro.core.dualsim import dual_simulation
from repro.core.kernel import dual_simulation_kernel, resolve_engine
from repro.core.npkernel import dual_simulation_numpy
from repro.core.matchplus import match_plus
from repro.core.matchrel import MatchRelation
from repro.core.minimize import minimize_pattern
from repro.core.pattern import Pattern
from repro.core.reach import resolve_path_engine
from repro.core.regular import regular_strong_match
from repro.core.result import MatchResult, PerfectSubgraph
from repro.core.simulation import graph_simulation
from repro.core.strong import match
from repro.exceptions import MatchingError
from repro.obs.metrics import get_registry as _obs_registry
from repro.obs.trace import span as _obs_span
from repro.service.cache import CacheStats, ResultCache
from repro.service.fingerprint import CanonicalPattern, canonical_form

#: Path-constrained algorithms (Fan et al. 2010/2011 extensions).  The
#: service executes them on the pool and observes them in the same
#: ``service.query_seconds{algorithm=..}`` histograms, but always
#: computes: pattern canonicalization (and hence the result cache) is
#: defined on plain label-graph patterns, not on edge bounds / regex
#: constraints, so there is no sound cache key to share entries under.
PATH_SERVICE_ALGORITHMS = ("bounded", "regular")

#: The algorithms the service can execute, by CLI-compatible name.
SERVICE_ALGORITHMS = (
    "match-plus", "match", "dual", "sim"
) + PATH_SERVICE_ALGORITHMS

#: The engine slot cache and single-flight keys use.  Entries are keyed
#: engine-independently: the engines' output-identity contract (the
#: differential suites' invariant) makes one stored encoding valid for
#: every engine, and keying by the *resolved* name fragmented warm
#: entries under ``engine="auto"`` — ``resolve_engine`` picks ``python``
#: for a tiny graph before an index exists and ``kernel`` after, so the
#: same query stream recomputed across the flip.
_ENGINE_ANY = "*"


@dataclass(frozen=True)
class Query:
    """One unit of work for :meth:`MatchService.submit_batch`."""

    pattern: Pattern
    data: DiGraph
    algorithm: str = "match-plus"
    engine: str = "auto"


@dataclass
class ServiceStats:
    """Aggregated service counters (cache stats plus execution counts).

    ``coalesced`` counts queries that found an identical computation
    already in flight and waited for it instead of racing a duplicate —
    the single-flight path.  A coalesced query resolves as a cache hit
    (it replays the leader's stored encoding), so N concurrent identical
    misses show up as ``computed == 1``, ``coalesced == N - 1`` and
    ``cache.stores == 1`` / ``cache.hits == N - 1``.
    """

    queries: int = 0
    computed: int = 0
    replayed: int = 0
    coalesced: int = 0
    cache: CacheStats = field(default_factory=CacheStats)


#: Every live service, for the metrics collector below (weak: a closed
#: or dropped service stops being sampled without unregistration).
_ALL_SERVICES: "weakref.WeakSet" = weakref.WeakSet()

_SERVICE_FIELDS = ("queries", "computed", "replayed", "coalesced")
_CACHE_FIELDS = (
    "hits", "misses", "stores", "invalidations", "retained", "evictions",
)


def _sample_service_metrics():
    """Snapshot-time fold of every live service's counters.

    Services sharing one :class:`ResultCache` share its ``CacheStats``
    object — deduplicate by identity so ``cache.*`` counts each store
    once, however many services front it.
    """
    totals = {name: 0 for name in _SERVICE_FIELDS}
    cache_totals = {name: 0 for name in _CACHE_FIELDS}
    seen_caches: set = set()
    for service in list(_ALL_SERVICES):
        stats = service.stats
        for name in _SERVICE_FIELDS:
            totals[name] += getattr(stats, name)
        cache_stats = stats.cache
        if id(cache_stats) in seen_caches:
            continue
        seen_caches.add(id(cache_stats))
        for name in _CACHE_FIELDS:
            cache_totals[name] += getattr(cache_stats, name)
    return [
        (f"service.{name}", {}, totals[name]) for name in _SERVICE_FIELDS
    ] + [
        (f"cache.{name}", {}, cache_totals[name]) for name in _CACHE_FIELDS
    ]


_obs_registry().register_collector(
    _sample_service_metrics, _sample_service_metrics
)


# ======================================================================
# Canonical-position result encoding
# ======================================================================
# Payload shapes (all hashable / immutable, safe to share across
# threads):
#   relation algorithms ("dual", "sim"):
#       tuple[frozenset[data node]] indexed by canonical position
#   "match": tuple of subgraph entries
#       (nodes: tuple[(node, label)], edges: tuple[(node, node)],
#        center, relation: tuple[frozenset] by canonical position)
#   "match-plus": same as "match"; the per-subgraph relation is
#       positions -> matches of *the position's node's quotient class*
#       (members of one dual-equivalence class share their match set,
#        so any member's position reproduces the class's entry).


def _encode_relation(
    relation: MatchRelation, canonical: CanonicalPattern
) -> tuple:
    slots: List[Optional[frozenset]] = [None] * canonical.num_nodes
    for node, position in canonical.order.items():
        slots[position] = frozenset(relation.matches_of_raw(node))
    return tuple(slots)


def _decode_relation(
    payload: tuple, canonical: CanonicalPattern
) -> MatchRelation:
    return MatchRelation(
        {
            node: set(payload[position])
            for node, position in canonical.order.items()
        }
    )


def _encode_match_result(
    result: MatchResult,
    canonical: CanonicalPattern,
    class_of: Optional[Dict] = None,
) -> tuple:
    """Encode a ``MatchResult`` by canonical position.

    ``class_of`` maps original pattern nodes to the relation's keys when
    they differ (the minimized quotient of ``match_plus``); ``None``
    means the relation is keyed by the original nodes (plain ``match``).
    """
    entries = []
    for subgraph in result:
        graph = subgraph.graph
        nodes = tuple(
            (node, graph.label(node)) for node in graph.nodes()
        )
        edges = tuple(graph.edges())
        slots: List[Optional[frozenset]] = [None] * canonical.num_nodes
        for node, position in canonical.order.items():
            relation_key = node if class_of is None else class_of[node]
            slots[position] = frozenset(
                subgraph.relation.matches_of_raw(relation_key)
            )
        entries.append((nodes, edges, subgraph.center, tuple(slots)))
    return tuple(entries)


def _decode_match_result(
    payload: tuple,
    pattern: Pattern,
    canonical: CanonicalPattern,
    minimized: bool,
) -> MatchResult:
    """Replay an encoded result under ``pattern``'s own node names.

    For ``match-plus`` the relation keys are the quotient class ids of
    *this* pattern's minimization — recomputed here (pattern-side work,
    engine-independent and cheap on the paper's small patterns) so a hit
    returns exactly what a direct ``match_plus`` call would have.
    """
    if minimized:
        quotient = minimize_pattern(pattern)
        result_pattern = quotient.pattern
        key_of = quotient.node_to_class
    else:
        result_pattern = pattern
        key_of = None
    result = MatchResult(result_pattern)
    for nodes, edges, center, slots in payload:
        graph = DiGraph._build_unchecked(nodes, edges)
        sim: Dict[object, set] = {}
        for node, position in canonical.order.items():
            key = node if key_of is None else key_of[node]
            matches = slots[position]
            previous = sim.get(key)
            if previous is None:
                sim[key] = set(matches)
            elif previous != matches:  # pragma: no cover - defensive
                raise MatchingError(
                    "cached relation disagrees across a quotient class; "
                    "refusing to replay an inconsistent entry"
                )
        result.add(PerfectSubgraph(graph, MatchRelation(sim), center))
    return result


# ======================================================================
# Compute paths (direct engine calls, one per algorithm)
# ======================================================================
def _compute_match_plus(pattern: Pattern, data: DiGraph, engine: str):
    return match_plus(pattern, data, engine=engine)


def _compute_match(pattern: Pattern, data: DiGraph, engine: str):
    return match(pattern, data, engine=engine)


def _compute_dual(pattern: Pattern, data: DiGraph, engine: str):
    if engine == "kernel":
        return dual_simulation_kernel(pattern, data)
    if engine == "numpy":
        return dual_simulation_numpy(pattern, data)
    return dual_simulation(pattern, data)


def _compute_sim(pattern: Pattern, data: DiGraph, engine: str):
    return graph_simulation(pattern, data, engine=engine)


def _compute_bounded(pattern, data: DiGraph, engine: str):
    # ``pattern`` is a BoundedPattern; engine was pre-resolved through
    # resolve_path_engine in submit().
    return bounded_simulation(pattern, data, engine=engine)


def _compute_regular(pattern, data: DiGraph, engine: str):
    # ``pattern`` is a RegularPattern.
    return regular_strong_match(pattern, data, engine=engine)


_COMPUTE: Dict[str, Callable] = {
    "match-plus": _compute_match_plus,
    "match": _compute_match,
    "dual": _compute_dual,
    "sim": _compute_sim,
    "bounded": _compute_bounded,
    "regular": _compute_regular,
}


class MatchService:
    """A concurrent matching service over one or many data graphs.

    Parameters
    ----------
    max_workers:
        Thread-pool width for :meth:`submit` / :meth:`submit_batch`.
    cache_size:
        LRU bound of the shared result cache (``0`` disables caching).
    cache:
        An externally owned :class:`ResultCache` to share between
        services; overrides ``cache_size``.

    Use as a context manager (or call :meth:`close`) to shut the pool
    down.  The service itself is thread-safe; see the module docstring
    for the mutation contract.
    """

    def __init__(
        self,
        max_workers: int = 4,
        cache_size: int = 256,
        cache: Optional[ResultCache] = None,
    ) -> None:
        if cache is not None:
            self.cache: Optional[ResultCache] = cache
        elif cache_size > 0:
            self.cache = ResultCache(cache_size)
        else:
            self.cache = None
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-match"
        )
        self._stats_lock = threading.Lock()
        # Single-flight table: one Event per (graph, canonical key,
        # algorithm, engine) currently being computed.  Followers wait on
        # the leader's event and then replay the cached encoding.
        self._inflight: Dict[tuple, threading.Event] = {}
        self._inflight_lock = threading.Lock()
        # NB: "is not None" matters — an empty ResultCache is falsy.
        self.stats = ServiceStats(
            cache=self.cache.stats if self.cache is not None else CacheStats()
        )
        _ALL_SERVICES.add(self)

    # ------------------------------------------------------------------
    def submit(
        self,
        pattern: Pattern,
        data: DiGraph,
        algorithm: str = "match-plus",
        engine: str = "auto",
    ) -> "Future":
        """Enqueue one query; the future resolves to the engine result.

        ``algorithm`` is one of :data:`SERVICE_ALGORITHMS` —
        ``match-plus`` / ``match`` return a
        :class:`~repro.core.result.MatchResult`, ``dual`` / ``sim`` a
        :class:`~repro.core.matchrel.MatchRelation` — exactly what the
        corresponding direct call returns.  For the path algorithms
        (``"bounded"`` / ``"regular"``) pass a
        :class:`~repro.core.bounded.BoundedPattern` /
        :class:`~repro.core.regular.RegularPattern` as ``pattern``;
        they run uncached (see :data:`PATH_SERVICE_ALGORITHMS`).
        """
        if algorithm not in _COMPUTE:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; "
                f"expected one of {SERVICE_ALGORITHMS}"
            )
        if algorithm in PATH_SERVICE_ALGORITHMS:
            # ``pattern`` is a BoundedPattern / RegularPattern here and
            # only the python/kernel tiers exist for path matching;
            # explicit engine="numpy" stays the caller error the direct
            # entry points make it.
            resolved = resolve_path_engine(engine, data)
        else:
            resolved = resolve_engine(engine, data)
        return self._pool.submit(
            self._execute, pattern, data, algorithm, resolved,
            perf_counter(),
        )

    def submit_batch(
        self, queries: Iterable[Query]
    ) -> List["Future"]:
        """Enqueue a query stream; one future per query, input order."""
        return [
            self.submit(q.pattern, q.data, q.algorithm, q.engine)
            for q in queries
        ]

    def query(
        self,
        pattern: Pattern,
        data: DiGraph,
        algorithm: str = "match-plus",
        engine: str = "auto",
    ):
        """Synchronous convenience: submit and wait."""
        return self.submit(pattern, data, algorithm, engine).result()

    # ------------------------------------------------------------------
    def submit_distributed(
        self,
        pattern: Pattern,
        cluster,
        radius: Optional[int] = None,
        engine: Optional[str] = None,
        cached: bool = True,
    ) -> "Future":
        """Enqueue one Section 4.3 run against a live ``Cluster``.

        The future resolves to a
        :class:`~repro.distributed.coordinator.DistributedRunReport`.
        Runs on one cluster serialize on the cluster's protocol lock
        (the bus accounting and per-query worker state demand it), but
        with a ``backend="processes"`` cluster the site evaluation
        happens off-GIL in the worker processes — so centralized queries
        keep flowing on the remaining pool threads while a distributed
        query is in flight, which a thread-backed cluster cannot offer
        under the GIL.

        Distributed results are cached, gated on the cluster's exact
        :meth:`~repro.distributed.coordinator.Cluster.version_vector`
        and kept alive across provably harmless ``apply_update`` deltas
        by the same retention rules as centralized entries.  The store
        of preference is the cluster's own shared ``result_store``
        (present on the ``processes`` backend, or after
        ``enable_result_store()``) so every service over one cluster
        shares warm entries and single-flight leadership; this
        service's cache is the fallback.  A warm hit replays the full
        report — result set, per-site counts, and the query's own bus
        charges on a fresh bus — byte-identically to a fresh
        ``cluster.run``, without touching a worker; a fresh run's
        report carries the cluster's live cumulative bus, as before.
        ``cached=False`` bypasses store and single-flight entirely and
        always runs the protocol (the force-recompute escape hatch).
        """
        return self._pool.submit(
            self._execute_distributed, pattern, cluster, radius, engine,
            cached, perf_counter(),
        )

    def query_distributed(
        self,
        pattern: Pattern,
        cluster,
        radius: Optional[int] = None,
        engine: Optional[str] = None,
        cached: bool = True,
    ):
        """Synchronous convenience: submit a distributed run and wait."""
        return self.submit_distributed(
            pattern, cluster, radius, engine, cached
        ).result()

    def _execute_distributed(
        self, pattern, cluster, radius, engine, cached=True,
        submitted_at=None,
    ):
        started = perf_counter()
        registry = _obs_registry()
        if submitted_at is not None:
            registry.histogram("service.queue_wait_seconds").observe(
                started - submitted_at
            )
        with _obs_span("service.distributed_query") as _sp:
            try:
                return self._run_distributed(
                    pattern, cluster, radius, engine, cached, _sp
                )
            finally:
                registry.histogram(
                    "service.query_seconds", algorithm="distributed"
                ).observe(perf_counter() - started)

    def _run_distributed(self, pattern, cluster, radius, engine, cached, _sp):
        with self._stats_lock:
            self.stats.queries += 1
        # NB: "is None" matters — an empty ResultCache is falsy.
        store = getattr(cluster, "result_store", None) if cached else None
        if store is None and cached:
            store = self.cache
        if store is None:
            report = cluster.run(pattern, radius, engine=engine)
            with self._stats_lock:
                self.stats.computed += 1  # on success only
            _sp.set(outcome="computed")
            return report
        canonical = canonical_form(pattern)
        effective_radius = pattern.diameter if radius is None else radius
        # Same single-flight loop as _execute, but the flight table
        # lives on the store: services sharing a cluster's result store
        # elect one leader per (cluster, fingerprint, radius) across
        # all of them, so a miss storm costs one protocol run.  The
        # key is engine-independent for the same reason cache keys are.
        flight_key = (cluster, canonical.key, effective_radius)
        coalesced = False
        while True:
            payload = store.lookup_distributed(
                cluster, canonical.key, effective_radius
            )
            if payload is not None:
                with self._stats_lock:
                    self.stats.replayed += 1
                if _sp.enabled:
                    _sp.set(outcome="replayed", coalesced=coalesced)
                return self._decode_run_report(
                    payload, pattern, canonical, cluster
                )
            leader_done = store.begin_flight(flight_key)
            if leader_done is None:
                break  # this thread computes
            if not coalesced:
                coalesced = True
                with self._stats_lock:
                    self.stats.coalesced += 1
            leader_done.wait()
        try:
            report = cluster.run(pattern, radius, engine=engine)
            store.store_distributed(
                cluster,
                canonical.key,
                effective_radius,
                canonical.label_set,
                self._encode_run_report(report, canonical),
                computed_vector=report.version_vector,
            )
            with self._stats_lock:
                self.stats.computed += 1  # on success only
            _sp.set(outcome="computed")
            return report
        finally:
            store.end_flight(flight_key)

    @staticmethod
    def _encode_run_report(report, canonical: CanonicalPattern):
        from repro.distributed.runtime.wire import encode_run_report

        # Distributed relations are keyed by the pattern's own nodes
        # (the protocol unions per-ball `match` partials), so the plain
        # canonical-position encoding applies — one entry serves every
        # isomorphic pattern.
        return encode_run_report(
            _encode_match_result(report.result, canonical),
            report.per_site_subgraphs,
            report.query_log,
        )

    @staticmethod
    def _decode_run_report(
        payload, pattern: Pattern, canonical: CanonicalPattern, cluster
    ):
        from repro.distributed.coordinator import DistributedRunReport
        from repro.distributed.network import MessageBus
        from repro.distributed.runtime.wire import decode_run_report

        entries, per_site, log = decode_run_report(payload)
        result = _decode_match_result(
            entries, pattern, canonical, minimized=False
        )
        # A replayed report carries a fresh bus holding exactly the
        # query's own charges: no real traffic happened (that is the
        # point of the hit), so the cluster's cumulative bus is not
        # advanced, but the per-query observation — what a fresh
        # cluster's run would show — is reproduced byte-identically.
        bus = MessageBus()
        for sender, receiver, kind, units in log:
            bus.send(sender, receiver, kind, units)
        return DistributedRunReport(
            result,
            bus,
            per_site,
            version_vector=cluster.version_vector(),
            query_log=tuple(log),
        )

    # ------------------------------------------------------------------
    def _execute(
        self,
        pattern: Pattern,
        data: DiGraph,
        algorithm: str,
        engine: str,
        submitted_at: Optional[float] = None,
    ):
        started = perf_counter()
        registry = _obs_registry()
        if submitted_at is not None:
            registry.histogram("service.queue_wait_seconds").observe(
                started - submitted_at
            )
        with _obs_span("service.query") as _sp:
            if _sp.enabled:
                _sp.set(algorithm=algorithm, engine=engine)
            try:
                return self._run_query(pattern, data, algorithm, engine, _sp)
            finally:
                registry.histogram(
                    "service.query_seconds", algorithm=algorithm
                ).observe(perf_counter() - started)

    def _run_query(
        self, pattern: Pattern, data: DiGraph, algorithm: str, engine: str,
        _sp,
    ):
        with self._stats_lock:
            self.stats.queries += 1
        cache = self.cache
        if cache is None or algorithm in PATH_SERVICE_ALGORITHMS:
            # Path-constrained patterns have no canonical form (see
            # PATH_SERVICE_ALGORITHMS) — always compute.
            with self._stats_lock:
                self.stats.computed += 1
            _sp.set(outcome="computed")
            return _COMPUTE[algorithm](pattern, data, engine)
        canonical = canonical_form(pattern)
        # Single-flight loop: a miss either elects this thread the
        # leader (it computes and publishes) or finds a leader already
        # computing the same (graph, fingerprint, algorithm) key —
        # then it waits and re-runs the lookup, which resolves to a
        # hit replayed under this query's own pattern names.  Isomorphic
        # patterns share the key — and so do engines (see _ENGINE_ANY):
        # N concurrent structurally identical misses cost one engine
        # run, not N, whatever mix of engines requested them.  No
        # deadlock is possible: an event only exists while its leader is
        # already executing on some pool thread, and the leader never
        # waits on anything.
        flight_key = (data, canonical.key, algorithm, _ENGINE_ANY)
        coalesced = False  # count each query at most once, even on retry
        while True:
            payload = cache.lookup(
                data, canonical.key, algorithm, _ENGINE_ANY
            )
            if payload is not None:
                with self._stats_lock:
                    self.stats.replayed += 1
                if _sp.enabled:
                    _sp.set(outcome="replayed", coalesced=coalesced)
                return self._decode(payload, pattern, canonical, algorithm)
            with self._inflight_lock:
                leader_done = self._inflight.get(flight_key)
                if leader_done is None:
                    self._inflight[flight_key] = threading.Event()
                    break  # this thread computes
            if not coalesced:
                coalesced = True
                with self._stats_lock:
                    self.stats.coalesced += 1
            leader_done.wait()
            # Loop: the common case re-looks-up into a hit.  A miss here
            # means the leader's store was refused (a racing mutation) or
            # the entry was already evicted/invalidated — then this
            # thread runs for leadership of a fresh computation.
        try:
            # Compute directly and hand the *engine's own* result back
            # (byte-for-byte what a direct call returns); the cache
            # stores the canonical encoding for future isomorphic
            # queries.  The version is read BEFORE computing: if a
            # mutation lands while the query runs, store() sees the gap
            # and refuses to cache a result that no future delta
            # delivery would know to invalidate.
            computed_version = data.version
            result = _COMPUTE[algorithm](pattern, data, engine)
            cache.store(
                data,
                canonical.key,
                algorithm,
                _ENGINE_ANY,
                canonical.label_set,
                self._encode(result, pattern, canonical, algorithm),
                computed_version=computed_version,
                radius=pattern.diameter,
            )
            with self._stats_lock:
                self.stats.computed += 1
            _sp.set(outcome="computed")
            return result
        finally:
            # Publish-and-release even when the compute raises: followers
            # wake, miss, and elect a new leader rather than hanging.
            with self._inflight_lock:
                done = self._inflight.pop(flight_key, None)
            if done is not None:
                done.set()

    @staticmethod
    def _encode(
        result, pattern: Pattern, canonical: CanonicalPattern, algorithm: str
    ):
        if algorithm in ("dual", "sim"):
            return _encode_relation(result, canonical)
        if algorithm == "match":
            return _encode_match_result(result, canonical)
        # match-plus: relations are keyed by the minimized quotient's
        # class ids; recompute the (deterministic) node -> class map.
        class_of = minimize_pattern(pattern).node_to_class
        return _encode_match_result(result, canonical, class_of)

    @staticmethod
    def _decode(
        payload, pattern: Pattern, canonical: CanonicalPattern, algorithm: str
    ):
        if algorithm in ("dual", "sim"):
            return _decode_relation(payload, canonical)
        return _decode_match_result(
            payload, pattern, canonical, minimized=(algorithm == "match-plus")
        )

    # ------------------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """Shut the worker pool down."""
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "MatchService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ======================================================================
# Workload replay (shared by the CLI, the experiment and the benchmark)
# ======================================================================
@dataclass
class WorkloadReport:
    """Outcome of replaying a query stream against a service."""

    queries: int
    seconds: float
    by_algorithm: Dict[str, int]
    stats: ServiceStats

    @property
    def throughput(self) -> float:
        """Completed queries per second.

        ``0.0`` for an empty stream (no queries completed, whatever the
        clock read); ``inf`` only when queries did complete in less
        than one clock tick.
        """
        if self.queries == 0:
            return 0.0
        return self.queries / self.seconds if self.seconds else float("inf")


def skewed_stream(
    patterns: Sequence[Pattern],
    data: DiGraph,
    algorithm: str = "match-plus",
    engine: str = "auto",
    rounds: int = 3,
) -> List[Query]:
    """A repetition-skewed query stream over ``patterns``.

    Each round submits every pattern ``2 * (len(patterns) - rank)``
    times — hot patterns repeat most, the workload shape a result cache
    is for.  The one shared stream builder used by the
    ``service-throughput`` experiment and ``benchmarks/bench_service.py``
    so both measure the same distribution.
    """
    return [
        Query(pattern, data, algorithm, engine)
        for _ in range(rounds)
        for rank, pattern in enumerate(patterns)
        for _ in range(2 * (len(patterns) - rank))
    ]


def replay_workload(
    service: MatchService, queries: Sequence[Query]
) -> Tuple[WorkloadReport, List]:
    """Replay ``queries`` through the pool; returns (report, results).

    Results come back in input order.  One shared implementation so the
    CLI ``workload`` subcommand, the ``service-throughput`` experiment
    and ``benchmarks/bench_service.py`` measure the same loop.
    """
    import time

    by_algorithm: Dict[str, int] = {}
    for q in queries:
        by_algorithm[q.algorithm] = by_algorithm.get(q.algorithm, 0) + 1
    start = time.perf_counter()
    futures = service.submit_batch(queries)
    results = [future.result() for future in futures]
    elapsed = time.perf_counter() - start
    return (
        WorkloadReport(len(queries), elapsed, by_algorithm, service.stats),
        results,
    )
