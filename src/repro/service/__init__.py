"""Query service layer: concurrent matching over the execution engines.

The serving-oriented subsystem between the engines and the user (the
MADlib move of wrapping analytics kernels in a service layer), with
three pillars:

* :mod:`repro.service.fingerprint` — canonical forms and fingerprints
  for pattern graphs, so structurally identical queries share one cache
  entry;
* :mod:`repro.service.cache` — the delta-invalidated LRU result cache
  (:class:`ResultCache` / :class:`CacheStats`), subscribed to each data
  graph's :class:`~repro.core.digraph.GraphDelta` stream;
* :mod:`repro.service.executor` — :class:`MatchService`, the
  thread-pooled ``submit`` / ``submit_batch`` façade, plus the workload
  replay loop shared by the CLI, the experiments registry and the
  benchmark suite.

See the executor module docstring for the thread-safety contract and
``ROADMAP.md`` ("Query service") for the architecture overview.
"""

from repro.service.cache import (
    BALL_BASED_ALGORITHMS,
    CacheStats,
    ResultCache,
)
from repro.service.executor import (
    PATH_SERVICE_ALGORITHMS,
    SERVICE_ALGORITHMS,
    MatchService,
    Query,
    ServiceStats,
    WorkloadReport,
    replay_workload,
    skewed_stream,
)
from repro.service.fingerprint import (
    CanonicalPattern,
    canonical_form,
    pattern_fingerprint,
)

__all__ = [
    "BALL_BASED_ALGORITHMS",
    "CacheStats",
    "CanonicalPattern",
    "MatchService",
    "PATH_SERVICE_ALGORITHMS",
    "Query",
    "ResultCache",
    "SERVICE_ALGORITHMS",
    "ServiceStats",
    "WorkloadReport",
    "canonical_form",
    "pattern_fingerprint",
    "replay_workload",
    "skewed_stream",
]
