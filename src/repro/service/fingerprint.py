"""Canonical forms and fingerprints for pattern graphs.

The query service shares cached results between *structurally identical*
queries: two patterns that differ only in how their nodes are named (and
in what order they were inserted) must map to one cache entry.  That
requires a **canonical form** — a renaming-invariant description of the
pattern — with two properties:

soundness (exact)
    Equal canonical keys imply the patterns are isomorphic.  This holds
    *by construction*, independent of any heuristic: the key spells out
    the whole graph (label sequence + edge list over canonical
    positions), so key equality exhibits a label-preserving isomorphism
    — the map matching canonical positions.  A cache hit can therefore
    never serve a result computed for a structurally different pattern.

completeness (best effort, exact for the paper's patterns)
    Isomorphic patterns get equal keys.  This is the graph-isomorphism
    problem; the implementation runs color refinement (labels refined by
    in/out neighbor color multisets — the 1-WL invariant) followed by
    individualization-refinement search over the remaining symmetric
    cells, taking the lexicographically smallest complete ordering.
    Pattern graphs are tiny (the paper bounds them by readability, and
    minimization shrinks them further), so the search is exhaustive in
    practice; an orbit-skip heuristic keeps highly symmetric patterns
    (stars, cliques) polynomial, and a refinement budget bounds
    adversarial inputs — past the budget (or past
    :data:`MAX_CANONICAL_NODES` nodes) the ordering degrades to
    insertion order, which can only cost cache *misses*, never wrong
    hits.

:func:`canonical_form` returns a :class:`CanonicalPattern`; the result
is memoized on the :class:`~repro.core.pattern.Pattern` (patterns are
immutable after construction), so repeated submissions of one pattern
object fingerprint for free.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from repro.core.digraph import Label, Node
from repro.core.pattern import Pattern

#: Above this node count the canonical ordering falls back to insertion
#: order (node identities enter the key, so sharing still cannot be
#: unsound — isomorphic-but-renamed patterns just stop sharing entries).
MAX_CANONICAL_NODES = 64

#: Budget of refinement passes for the individualization search; tiny
#: patterns finish in a handful, the cap only guards adversarial shapes.
_REFINEMENT_BUDGET = 10_000


class CanonicalPattern:
    """The canonical form of one pattern.

    Attributes
    ----------
    key:
        Hashable, renaming-invariant identity:
        ``(num_nodes, labels_by_position, edges_by_position)`` — equal
        keys exhibit an isomorphism via the position map.  This is what
        the result cache keys on.
    order:
        ``pattern node -> canonical position``; the bridge for replaying
        a cached (position-indexed) result under a different pattern's
        node names.
    fingerprint:
        SHA-256 hex digest of the key — a compact, loggable identity.
        Stable within a process (labels hash by ``repr``); the cache
        compares full keys, never digests.
    label_set:
        The pattern's label set, precomputed for delta invalidation.
    """

    __slots__ = ("key", "order", "fingerprint", "label_set")

    def __init__(self, key: tuple, order: Dict[Node, int]) -> None:
        self.key = key
        self.order = order
        self.label_set = frozenset(key[1])
        digest = hashlib.sha256()
        digest.update(repr(key).encode("utf-8", "backslashreplace"))
        self.fingerprint = digest.hexdigest()

    @property
    def num_nodes(self) -> int:
        return self.key[0]

    def position_of(self, node: Node) -> int:
        """Canonical position of a pattern node."""
        return self.order[node]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CanonicalPattern):
            return NotImplemented
        return self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)

    def __repr__(self) -> str:
        return (
            f"CanonicalPattern(|Vq|={self.num_nodes}, "
            f"fingerprint={self.fingerprint[:12]}...)"
        )


def _label_ranks(labels: List[Label]) -> List[int]:
    """Deterministic integer rank per label.

    Labels are arbitrary hashables, so they are ordered by
    ``(type name, repr)``.  Two distinct labels with colliding sort keys
    would merely make the rank assignment insertion-dependent —
    degrading completeness for such (pathological) label sets — while
    soundness is untouched: the canonical *key* carries the labels
    themselves, position by position.
    """
    distinct = sorted(set(labels), key=lambda l: (type(l).__name__, repr(l)))
    rank = {label: r for r, label in enumerate(distinct)}
    return [rank[label] for label in labels]


def _refine(
    colors: List[int], fwd: List[List[int]], rev: List[List[int]]
) -> List[int]:
    """Color refinement to a fixpoint (the 1-WL partition).

    Each round recolors node ``i`` by ``(color, sorted successor colors,
    sorted predecessor colors)`` and re-ranks the signatures; stable
    when a round splits no cell.
    """
    n = len(colors)
    while True:
        sigs = [
            (
                colors[i],
                tuple(sorted(colors[j] for j in fwd[i])),
                tuple(sorted(colors[j] for j in rev[i])),
            )
            for i in range(n)
        ]
        ranks = {sig: r for r, sig in enumerate(sorted(set(sigs)))}
        refined = [ranks[sigs[i]] for i in range(n)]
        if refined == colors:
            return refined
        colors = refined


def _canonical_order(
    n: int,
    fwd: List[List[int]],
    rev: List[List[int]],
    init_colors: List[int],
    edge_list: List[Tuple[int, int]],
) -> List[int]:
    """Individualization-refinement search for the canonical ordering.

    Returns ``order`` with ``order[position] = node index``, minimizing
    the comparable form ``(label ranks by position, edges by position)``
    over every discrete refinement reachable by individualizing cell
    members.  Members of one cell that root identical subtree keys are
    assumed interchangeable (same orbit) and the cell is not explored
    further — exact for automorphic cells, and a wrong guess on
    WL-ambiguous non-automorphic cells only costs completeness.
    """
    best: List[Optional[tuple]] = [None]
    best_order: List[Optional[List[int]]] = [None]
    budget = [_REFINEMENT_BUDGET]

    def comparable(order: List[int]) -> tuple:
        pos_of = [0] * n
        for position, node in enumerate(order):
            pos_of[node] = position
        edges = tuple(sorted((pos_of[a], pos_of[b]) for a, b in edge_list))
        return (tuple(init_colors[v] for v in order), edges)

    def explore(colors: List[int]) -> Optional[tuple]:
        if budget[0] <= 0:
            return None
        budget[0] -= 1
        colors = _refine(colors, fwd, rev)
        cells: Dict[int, List[int]] = {}
        for i, color in enumerate(colors):
            cells.setdefault(color, []).append(i)
        target: Optional[List[int]] = None
        for color in sorted(cells):
            if len(cells[color]) > 1:
                target = cells[color]
                break
        if target is None:  # discrete: one complete ordering
            order = sorted(range(n), key=colors.__getitem__)
            key = comparable(order)
            if best[0] is None or key < best[0]:
                best[0] = key
                best_order[0] = order
            return key
        subtree_key: Optional[tuple] = None
        previous: Optional[tuple] = None
        for member in target:
            forked = list(colors)
            forked[member] = -1  # individualize: a fresh minimal color
            key = explore(forked)
            if key is not None and (subtree_key is None or key < subtree_key):
                subtree_key = key
            if key is not None and key == previous:
                break  # two members rooted identical keys: orbit skip
            previous = key
        return subtree_key

    explore(list(init_colors))
    if best_order[0] is None:  # budget exhausted before any leaf
        return list(range(n))
    return best_order[0]


def canonical_form(pattern: Pattern) -> CanonicalPattern:
    """Compute (or recall) the canonical form of ``pattern``.

    The result is memoized on the pattern object — patterns are
    immutable after construction, exactly like the cached diameter.
    """
    cached = pattern._canonical_cache
    if cached is not None:
        return cached

    graph = pattern.graph
    nodes: List[Node] = list(graph.nodes())
    n = len(nodes)
    index = {node: i for i, node in enumerate(nodes)}
    labels = [graph.label(node) for node in nodes]
    edge_list = [(index[a], index[b]) for a, b in graph.edges()]

    if n > MAX_CANONICAL_NODES:
        # Oversized pattern: skip the search and key on the nodes
        # themselves — never unsound, just not renaming-invariant.
        order = list(range(n))
        key = (
            n,
            tuple(labels),
            tuple(sorted(edge_list)),
            tuple(repr(node) for node in nodes),
        )
    else:
        init_colors = _label_ranks(labels)
        fwd: List[List[int]] = [[] for _ in range(n)]
        rev: List[List[int]] = [[] for _ in range(n)]
        for a, b in edge_list:
            fwd[a].append(b)
            rev[b].append(a)
        order = _canonical_order(n, fwd, rev, init_colors, edge_list)
        pos_of = [0] * n
        for position, node_id in enumerate(order):
            pos_of[node_id] = position
        key = (
            n,
            tuple(labels[node_id] for node_id in order),
            tuple(sorted((pos_of[a], pos_of[b]) for a, b in edge_list)),
        )
        order = pos_of  # reuse: order[i] is now node i's position

    canonical = CanonicalPattern(
        key, {nodes[i]: order[i] for i in range(n)}
    )
    pattern._canonical_cache = canonical
    return canonical


def pattern_fingerprint(pattern: Pattern) -> str:
    """The hex fingerprint of a pattern (see :class:`CanonicalPattern`)."""
    return canonical_form(pattern).fingerprint
