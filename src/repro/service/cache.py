"""Delta-invalidated LRU result cache for the query service.

Entries are keyed by ``(data graph, canonical pattern key, algorithm,
engine)`` and hold results in a *canonical-position-indexed* encoding
(see :mod:`repro.service.executor` for the encoders), so one entry
serves every pattern isomorphic to the one that populated it.

Freshness is enforced two ways, belt and suspenders:

* every entry records the ``DiGraph.version`` it is valid for, and a
  lookup only hits when that matches the graph's current version —
  a mutation the cache never heard about (or one inside a still-open
  ``batch()``) can therefore never serve a stale result; and
  :meth:`ResultCache.store` refuses a payload whose pre-compute version
  no longer matches, so a mutation racing a long-running query cannot
  plant an entry that later deliveries would never know to invalidate;
* the cache *subscribes* to each graph's
  :class:`~repro.core.digraph.GraphDelta` stream and, instead of
  flushing the graph's entries on every mutation, keeps an entry live —
  advancing its valid version — when the delta group **provably cannot
  affect it**:

  ===============  ====================================================
  delta            keeps an entry with pattern label set ``L`` live iff
  ===============  ====================================================
  ``add_node``     its label is outside ``L`` (the node is isolated at
                   that point: it can seed no candidate set, and a ball
                   centered on it matches nothing)
  ``remove_node``  its label is outside ``L`` (incident-edge deltas
                   precede it in the same batch and are judged
                   separately; the node itself is already isolated)
  ``relabel``      both the old and the new label are outside ``L``
                   (candidacy is unchanged on both sides; edges — and
                   hence every ball — are untouched)
  ``add_edge`` /   **global relations** (``dual``, ``sim``): either
  ``remove_edge``  endpoint's label is outside ``L`` — an edge is only
                   ever consulted as a witness between two candidates,
                   and a node whose label is outside ``L`` is never a
                   candidate.  **Ball-based algorithms** (``match``,
                   ``match-plus``): never — an edge between any two
                   nodes can rewire undirected distances and pull new
                   candidates into a ball, label-disjoint or not.
  ===============  ====================================================

Everything else invalidates the entry.  The rules err on the side of
dropping (e.g. an edge delta whose endpoint labels cannot be recovered
invalidates unconditionally), so a hit is always exactly what a fresh
computation would produce — the property the differential tests assert.

:class:`CacheStats` exposes hit/miss/store/invalidation counters; all
cache operations are thread-safe (one lock, held only for dict work).
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.digraph import (
    ADD_EDGE,
    ADD_NODE,
    REMOVE_EDGE,
    REMOVE_NODE,
    RELABEL,
    DiGraph,
    GraphDelta,
    Label,
)

#: Algorithms whose results depend on ball topology: edge deltas always
#: invalidate their entries (see the module docstring's rule table).
BALL_BASED_ALGORITHMS = frozenset({"match", "match-plus"})


@dataclass
class CacheStats:
    """Counters for one :class:`ResultCache`.

    Attributes
    ----------
    hits / misses:
        Lookup outcomes.
    stores:
        Entries written (one per computed miss).
    invalidations:
        Entries dropped because a delta could have affected them.
    retained:
        Entry×delta-group combinations that *survived* invalidation —
        the precision the label rules buy over flush-on-any-mutation.
    evictions:
        Entries dropped by the LRU bound.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0
    retained: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _Entry:
    """One cached result."""

    __slots__ = ("payload", "label_set", "ball_based", "valid_version")

    def __init__(
        self,
        payload: object,
        label_set: FrozenSet[Label],
        ball_based: bool,
        valid_version: int,
    ) -> None:
        self.payload = payload
        self.label_set = label_set
        self.ball_based = ball_based
        self.valid_version = valid_version


class _GraphSubscription:
    """The cache's listener on one data graph's delta stream.

    Held strongly by the cache (the graph itself only holds a weakref),
    and holding the graph weakly in turn, so neither keeps the other
    alive.  When the graph dies, the weakref callback purges its
    entries.
    """

    __slots__ = ("token", "graph_ref", "keys", "_cache_ref", "__weakref__")

    def __init__(self, token: int, graph: DiGraph, cache: "ResultCache") -> None:
        self.token = token
        self._cache_ref = weakref.ref(cache)
        self.keys: Set[tuple] = set()
        self.graph_ref = weakref.ref(
            graph, lambda _ref, t=token: self._purge(t)
        )
        graph.subscribe(self)

    def _purge(self, token: int) -> None:
        cache = self._cache_ref()
        if cache is not None:
            cache._drop_graph(token)

    def on_graph_deltas(self, deltas: Tuple[GraphDelta, ...]) -> None:
        cache = self._cache_ref()
        if cache is not None:
            cache._on_deltas(self, deltas)


class ResultCache:
    """LRU cache of canonical-position-encoded matching results."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        self._subscriptions: "weakref.WeakKeyDictionary[DiGraph, _GraphSubscription]" = (
            weakref.WeakKeyDictionary()
        )
        self._by_token: Dict[int, _GraphSubscription] = {}
        self._next_token = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def lookup(
        self,
        graph: DiGraph,
        canonical_key: tuple,
        algorithm: str,
        engine: str,
    ) -> Optional[object]:
        """The cached payload, or ``None`` on a miss.

        A hit requires the entry's valid version to equal the graph's
        *current* version — mutations buffered in an open ``batch()``
        (version bumped, deltas undelivered) thus read as misses.
        """
        with self._lock:
            subscription = self._subscriptions.get(graph)
            if subscription is None:
                self.stats.misses += 1
                return None
            key = (subscription.token, canonical_key, algorithm, engine)
            entry = self._entries.get(key)
            if entry is None or entry.valid_version != graph.version:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry.payload

    def store(
        self,
        graph: DiGraph,
        canonical_key: tuple,
        algorithm: str,
        engine: str,
        label_set: FrozenSet[Label],
        payload: object,
        computed_version: Optional[int] = None,
    ) -> None:
        """Insert (or refresh) one computed result.

        ``computed_version`` is the ``graph.version`` the caller read
        *before* computing ``payload``.  If the graph has moved since,
        the payload describes a past state — and later delta deliveries
        would judge only *future* mutations against it, never the missed
        one — so the store is refused outright rather than inserting an
        entry that could be resurrected stale.
        """
        with self._lock:
            version = graph.version
            if computed_version is not None and computed_version != version:
                return  # raced with a mutation: the payload is already old
            subscription = self._subscriptions.get(graph)
            if subscription is None:
                token = self._next_token
                self._next_token += 1
                subscription = _GraphSubscription(token, graph, self)
                self._subscriptions[graph] = subscription
                self._by_token[token] = subscription
            key = (subscription.token, canonical_key, algorithm, engine)
            self._entries[key] = _Entry(
                payload,
                label_set,
                algorithm in BALL_BASED_ALGORITHMS,
                version,
            )
            self._entries.move_to_end(key)
            subscription.keys.add(key)
            self.stats.stores += 1
            while len(self._entries) > self.max_entries:
                evicted_key, _ = self._entries.popitem(last=False)
                owner = self._by_token.get(evicted_key[0])
                if owner is not None:
                    owner.keys.discard(evicted_key)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (subscriptions stay, for their graphs' reuse)."""
        with self._lock:
            self._entries.clear()
            for subscription in self._by_token.values():
                subscription.keys.clear()

    # ------------------------------------------------------------------
    # Delta invalidation
    # ------------------------------------------------------------------
    def _on_deltas(
        self,
        subscription: _GraphSubscription,
        deltas: Tuple[GraphDelta, ...],
    ) -> None:
        with self._lock:
            if not subscription.keys:
                return
            graph = subscription.graph_ref()
            if graph is None:  # racing with graph teardown
                self._drop_graph(subscription.token)
                return
            digest = self._digest_group(graph, deltas)
            survivors = []
            dropped = []
            for key in subscription.keys:
                entry = self._entries.get(key)
                if entry is None:
                    dropped.append(key)  # evicted; tidy the key set
                    continue
                if self._group_harmless(digest, entry):
                    survivors.append(entry)
                else:
                    del self._entries[key]
                    dropped.append(key)
                    self.stats.invalidations += 1
            for key in dropped:
                subscription.keys.discard(key)
            version = graph.version
            for entry in survivors:
                entry.valid_version = version
            self.stats.retained += len(survivors)

    @staticmethod
    def _digest_group(
        graph: DiGraph, deltas: Tuple[GraphDelta, ...]
    ) -> Tuple[Set[Label], bool, List[Tuple[object, object]], bool]:
        """Resolve one delta group's touched labels, once for all entries.

        Returns ``(node_labels, any_edge, edge_label_pairs, unjudgeable)``:
        every label a node-lifecycle/relabel delta touches, whether any
        edge delta occurred, the (source label, target label) pair of
        each edge delta, and whether anything defied classification
        (unknown kind or unrecoverable endpoint — drops every entry).
        Endpoint labels resolve against the graph, falling back to the
        group's own ``remove_node`` deltas: a removed endpoint has left
        the label map by delivery time, but its removal delta (always in
        the same batch) still carries the label.
        """
        removed_labels: Dict[object, Label] = {
            delta.node: delta.label
            for delta in deltas
            if delta.kind == REMOVE_NODE
        }
        node_labels: Set[Label] = set()
        edge_pairs: List[Tuple[object, object]] = []
        any_edge = False
        unjudgeable = False
        for delta in deltas:
            kind = delta.kind
            if kind == ADD_NODE or kind == REMOVE_NODE:
                node_labels.add(delta.label)
            elif kind == RELABEL:
                node_labels.add(delta.label)
                node_labels.add(delta.old_label)
            elif kind == ADD_EDGE or kind == REMOVE_EDGE:
                any_edge = True
                labels = []
                for node in (delta.source, delta.target):
                    if node in graph:
                        labels.append(graph.label(node))
                    elif node in removed_labels:
                        labels.append(removed_labels[node])
                    else:
                        unjudgeable = True  # cannot prove anything
                        break
                else:
                    edge_pairs.append((labels[0], labels[1]))
            else:
                unjudgeable = True  # unknown delta kind: be safe
        return node_labels, any_edge, edge_pairs, unjudgeable

    @staticmethod
    def _group_harmless(digest, entry: _Entry) -> bool:
        """True iff no delta in the digested group can change ``entry``.

        Implements the rule table in the module docstring as pure set
        work — the per-group label resolution already happened in
        :meth:`_digest_group`, so judging an entry is O(group size) with
        no graph lookups.
        """
        node_labels, any_edge, edge_pairs, unjudgeable = digest
        if unjudgeable:
            return False
        labels = entry.label_set
        if not node_labels.isdisjoint(labels):
            return False
        if not any_edge:
            return True
        if entry.ball_based:
            return False  # any edge can rewire ball membership
        return all(
            source not in labels or target not in labels
            for source, target in edge_pairs
        )

    def _drop_graph(self, token: int) -> None:
        with self._lock:
            subscription = self._by_token.pop(token, None)
            if subscription is None:
                return
            for key in subscription.keys:
                self._entries.pop(key, None)
            subscription.keys.clear()
