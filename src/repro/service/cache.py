"""Delta-invalidated LRU result cache for the query service.

Entries are keyed by ``(data graph, canonical pattern key, algorithm,
engine)`` and hold results in a *canonical-position-indexed* encoding
(see :mod:`repro.service.executor` for the encoders), so one entry
serves every pattern isomorphic to the one that populated it.

Freshness is enforced two ways, belt and suspenders:

* every entry records the ``DiGraph.version`` it is valid for, and a
  lookup only hits when that matches the graph's current version —
  a mutation the cache never heard about (or one inside a still-open
  ``batch()``) can therefore never serve a stale result; and
  :meth:`ResultCache.store` refuses a payload whose pre-compute version
  no longer matches, so a mutation racing a long-running query cannot
  plant an entry that later deliveries would never know to invalidate;
* the cache *subscribes* to each graph's
  :class:`~repro.core.digraph.GraphDelta` stream and, instead of
  flushing the graph's entries on every mutation, keeps an entry live —
  advancing its valid version — when the delta group **provably cannot
  affect it**:

  ===============  ====================================================
  delta            keeps an entry with pattern label set ``L`` live iff
  ===============  ====================================================
  ``add_node``     its label is outside ``L`` (the node is isolated at
                   that point: it can seed no candidate set, and a ball
                   centered on it matches nothing)
  ``remove_node``  its label is outside ``L`` (incident-edge deltas
                   precede it in the same batch and are judged
                   separately; the node itself is already isolated)
  ``relabel``      both the old and the new label are outside ``L``
                   (candidacy is unchanged on both sides; edges — and
                   hence every ball — are untouched)
  ``add_edge`` /   **global relations** (``dual``, ``sim``): either
  ``remove_edge``  endpoint's label is outside ``L`` — an edge is only
                   ever consulted as a witness between two candidates,
                   and a node whose label is outside ``L`` is never a
                   candidate.  **Ball-based algorithms** (``match``,
                   ``match-plus``, entries stamped with the pattern
                   diameter ``d_Q``): no *candidate* — no node with a
                   label in ``L`` — lies within undirected distance
                   ``d_Q`` of either endpoint.  Such an edge cannot
                   change any ball's candidate membership: a candidate
                   entering or leaving some ``B(w, d_Q)`` would need a
                   shortest path through the edge, whose prefix reaches
                   the nearer endpoint within ``d_Q`` — contradiction.
                   Non-candidate ball members are invisible to dual
                   simulation (sim sets hold only label-compatible
                   nodes and witness edges join two candidates), so
                   every ball's match outcome is unchanged.  Distances
                   are measured by one BFS from all edge-delta
                   endpoints over the delivery-time graph *augmented
                   with the group's removed edges* (and through its
                   removed nodes): the augmented edge set is a superset
                   of every intermediate state's, so its distances
                   lower-bound theirs and the check is sound for every
                   delta in the group, additions and removals alike.
  ===============  ====================================================

Everything else invalidates the entry.  The rules err on the side of
dropping (e.g. an edge delta whose endpoint labels cannot be recovered
invalidates unconditionally, as does a ball-based entry stored without
a radius stamp), so a hit is always exactly what a fresh computation
would produce — the property the differential tests assert.

**Distributed entries** (:meth:`ResultCache.lookup_distributed` /
:meth:`ResultCache.store_distributed`) extend the machinery to a live
:class:`~repro.distributed.coordinator.Cluster`: the freshness stamp
is the cluster's per-site **version vector** instead of a
``DiGraph.version``, and the delta stream arrives through
``Cluster.subscribe`` (one delta per routed ``apply_update``).  Their
retention rule is *stricter* than the table above, because a
distributed entry replays the query's full bus log and per-site counts
byte-identically, not just its result: every node is a ball center in
the Section 4.3 protocol, so an **edge** delta can grow or shrink
boundary-crossing balls — and hence the accounted fetch traffic —
arbitrarily far from every candidate, where the ``d_Q`` distance rule
would wrongly retain.  Edge deltas therefore always drop distributed
entries.  **Node** deltas whose labels are disjoint from the entry's
pattern labels provably change nothing a fresh run would observe: an
added node starts isolated (a silent local singleton ball, appended
after every existing center), a removed node is isolated by the delta
ordering contract (its incident-edge removals, delivered first,
already dropped the entry if it had any), and a relabel changes
neither ball membership nor record sizes (fetch units are ``1 +
degree``) nor candidacy outside the pattern's labels.  Distributed
entries are engine-independent (the engines' output-identity contract
makes one entry valid for every engine).

:class:`CacheStats` exposes hit/miss/store/invalidation counters; all
cache operations are thread-safe (one lock, held only for dict work).
The cache also hosts the **single-flight table** services coalesce
duplicate computations on (:meth:`ResultCache.begin_flight`), so
several services sharing one store — the shared distributed store a
``processes``-backend cluster carries — elect one leader per key
across all of them: a miss storm costs one protocol run.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.digraph import (
    ADD_EDGE,
    ADD_NODE,
    REMOVE_EDGE,
    REMOVE_NODE,
    RELABEL,
    DiGraph,
    GraphDelta,
    Label,
)

#: Algorithms whose results depend on ball topology: edge deltas
#: invalidate their entries unless they are provably too far from every
#: candidate (see the module docstring's rule table).
BALL_BASED_ALGORITHMS = frozenset({"match", "match-plus"})

#: The algorithm slot distributed entries are keyed under.  It never
#: collides with a centralized key: centralized entries are keyed by a
#: graph-subscription token, distributed ones by a cluster-subscription
#: token, and tokens are allocated from one shared counter.
DISTRIBUTED_ALGORITHM = "distributed"

#: Sentinels for the distance digest: a label the BFS never reached is
#: "infinitely far", and a missing labels_raw lookup must not collide
#: with ``None`` (a legal label).
_FAR = float("inf")
_DEPTH_MISS = object()


@dataclass
class CacheStats:
    """Counters for one :class:`ResultCache`.

    Attributes
    ----------
    hits / misses:
        Lookup outcomes.
    stores:
        Entries written (one per computed miss).
    invalidations:
        Entries dropped because a delta could have affected them.
    retained:
        Entry×delta-group combinations that *survived* invalidation —
        the precision the label rules buy over flush-on-any-mutation.
    evictions:
        Entries dropped by the LRU bound.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0
    retained: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _Entry:
    """One cached result.

    ``radius`` is the pattern diameter ``d_Q`` the result's balls were
    bounded by — the distance horizon of the ball-based edge-delta rule.
    (For ``match-plus`` the stored original-pattern diameter is an upper
    bound on the minimized pattern's, which only makes the rule more
    conservative.)  ``None`` means "unknown": edge deltas then drop the
    entry unconditionally, the pre-PR-5 behavior.
    """

    __slots__ = (
        "payload", "label_set", "ball_based", "valid_version", "radius",
    )

    def __init__(
        self,
        payload: object,
        label_set: FrozenSet[Label],
        ball_based: bool,
        valid_version: int,
        radius: Optional[int] = None,
    ) -> None:
        self.payload = payload
        self.label_set = label_set
        self.ball_based = ball_based
        self.valid_version = valid_version
        self.radius = radius


class _GraphSubscription:
    """The cache's listener on one data graph's delta stream.

    Held strongly by the cache (the graph itself only holds a weakref),
    and holding the graph weakly in turn, so neither keeps the other
    alive.  When the graph dies, the weakref callback purges its
    entries.
    """

    __slots__ = ("token", "graph_ref", "keys", "_cache_ref", "__weakref__")

    def __init__(self, token: int, graph: DiGraph, cache: "ResultCache") -> None:
        self.token = token
        self._cache_ref = weakref.ref(cache)
        self.keys: Set[tuple] = set()
        self.graph_ref = weakref.ref(
            graph, lambda _ref, t=token: self._purge(t)
        )
        graph.subscribe(self)

    def _purge(self, token: int) -> None:
        cache = self._cache_ref()
        if cache is not None:
            cache._drop_graph(token)

    def on_graph_deltas(self, deltas: Tuple[GraphDelta, ...]) -> None:
        cache = self._cache_ref()
        if cache is not None:
            cache._on_deltas(self, deltas)


class _ClusterSubscription:
    """The cache's listener on one cluster's routed-delta stream.

    The distributed twin of :class:`_GraphSubscription`: held strongly
    by the cache, holding the cluster weakly, purging the cluster's
    entries when it dies.  ``valid_version`` of its entries is the
    cluster's version vector (a tuple), not a scalar graph version.
    """

    __slots__ = ("token", "cluster_ref", "keys", "_cache_ref", "__weakref__")

    def __init__(self, token: int, cluster, cache: "ResultCache") -> None:
        self.token = token
        self._cache_ref = weakref.ref(cache)
        self.keys: Set[tuple] = set()
        self.cluster_ref = weakref.ref(
            cluster, lambda _ref, t=token: self._purge(t)
        )
        cluster.subscribe(self)

    def _purge(self, token: int) -> None:
        cache = self._cache_ref()
        if cache is not None:
            cache._drop_graph(token)

    def on_cluster_deltas(self, deltas: Tuple[GraphDelta, ...]) -> None:
        cache = self._cache_ref()
        if cache is not None:
            cache._on_cluster_deltas(self, deltas)


class ResultCache:
    """LRU cache of canonical-position-encoded matching results."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        self._subscriptions: "weakref.WeakKeyDictionary[DiGraph, _GraphSubscription]" = (
            weakref.WeakKeyDictionary()
        )
        self._cluster_subscriptions: "weakref.WeakKeyDictionary" = (
            weakref.WeakKeyDictionary()
        )
        #: token -> graph OR cluster subscription (one shared counter,
        #: so keys of the two kinds can never collide in ``_entries``).
        self._by_token: Dict[int, object] = {}
        self._next_token = 0
        # Single-flight table (see ``begin_flight``): key -> the
        # leader's done event.  Its own lock, never held while waiting.
        self._flights: Dict[object, threading.Event] = {}
        self._flight_lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def lookup(
        self,
        graph: DiGraph,
        canonical_key: tuple,
        algorithm: str,
        engine: str,
    ) -> Optional[object]:
        """The cached payload, or ``None`` on a miss.

        A hit requires the entry's valid version to equal the graph's
        *current* version — mutations buffered in an open ``batch()``
        (version bumped, deltas undelivered) thus read as misses.
        """
        with self._lock:
            subscription = self._subscriptions.get(graph)
            if subscription is None:
                self.stats.misses += 1
                return None
            key = (subscription.token, canonical_key, algorithm, engine)
            entry = self._entries.get(key)
            if entry is None or entry.valid_version != graph.version:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry.payload

    def store(
        self,
        graph: DiGraph,
        canonical_key: tuple,
        algorithm: str,
        engine: str,
        label_set: FrozenSet[Label],
        payload: object,
        computed_version: Optional[int] = None,
        radius: Optional[int] = None,
    ) -> None:
        """Insert (or refresh) one computed result.

        ``computed_version`` is the ``graph.version`` the caller read
        *before* computing ``payload``.  If the graph has moved since,
        the payload describes a past state — and later delta deliveries
        would judge only *future* mutations against it, never the missed
        one — so the store is refused outright rather than inserting an
        entry that could be resurrected stale.

        ``radius`` is the pattern diameter; for ball-based algorithms it
        enables the distance-based edge-delta retention rule (omitting
        it keeps the always-drop behavior).
        """
        with self._lock:
            version = graph.version
            if computed_version is not None and computed_version != version:
                return  # raced with a mutation: the payload is already old
            subscription = self._subscriptions.get(graph)
            if subscription is None:
                token = self._next_token
                self._next_token += 1
                subscription = _GraphSubscription(token, graph, self)
                self._subscriptions[graph] = subscription
                self._by_token[token] = subscription
            key = (subscription.token, canonical_key, algorithm, engine)
            self._entries[key] = _Entry(
                payload,
                label_set,
                algorithm in BALL_BASED_ALGORITHMS,
                version,
                radius,
            )
            self._entries.move_to_end(key)
            subscription.keys.add(key)
            self.stats.stores += 1
            while len(self._entries) > self.max_entries:
                evicted_key, _ = self._entries.popitem(last=False)
                owner = self._by_token.get(evicted_key[0])
                if owner is not None:
                    owner.keys.discard(evicted_key)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (subscriptions stay, for their graphs' reuse)."""
        with self._lock:
            self._entries.clear()
            for subscription in self._by_token.values():
                subscription.keys.clear()

    # ------------------------------------------------------------------
    # Distributed entries (cluster-keyed, version-vector gated)
    # ------------------------------------------------------------------
    def lookup_distributed(
        self, cluster, canonical_key: tuple, radius: int
    ) -> Optional[object]:
        """The cached run-report payload for ``cluster``, or ``None``.

        A hit requires the entry's valid version vector to equal the
        cluster's *current* :meth:`~Cluster.version_vector` — any
        ``apply_update`` since the store reads as a miss unless the
        delta deliveries provably retained the entry.  The key carries
        no engine slot: the engines' output-identity contract makes one
        entry valid for every engine choice.
        """
        with self._lock:
            subscription = self._cluster_subscriptions.get(cluster)
            if subscription is None:
                self.stats.misses += 1
                return None
            key = (
                subscription.token, canonical_key, DISTRIBUTED_ALGORITHM,
                radius,
            )
            entry = self._entries.get(key)
            if entry is None or entry.valid_version != cluster.version_vector():
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry.payload

    def store_distributed(
        self,
        cluster,
        canonical_key: tuple,
        radius: int,
        label_set: FrozenSet[Label],
        payload: object,
        computed_vector: Optional[Tuple[int, ...]] = None,
    ) -> None:
        """Insert one computed distributed run report.

        ``computed_vector`` is the version vector the run was evaluated
        under (``DistributedRunReport.version_vector``); if the cluster
        has moved since, the store is refused — the missed update's
        delivery predates the entry and could never invalidate it.
        ``radius`` is the effective ball radius of the run (part of the
        key: different radii are different queries) and the ``d_Q``
        horizon of the edge-delta retention rule.
        """
        with self._lock:
            vector = cluster.version_vector()
            if computed_vector is not None and computed_vector != vector:
                return  # raced with apply_update: the payload is already old
            subscription = self._cluster_subscriptions.get(cluster)
            if subscription is None:
                token = self._next_token
                self._next_token += 1
                subscription = _ClusterSubscription(token, cluster, self)
                self._cluster_subscriptions[cluster] = subscription
                self._by_token[token] = subscription
            key = (
                subscription.token, canonical_key, DISTRIBUTED_ALGORITHM,
                radius,
            )
            self._entries[key] = _Entry(
                payload, label_set, True, vector, radius
            )
            self._entries.move_to_end(key)
            subscription.keys.add(key)
            self.stats.stores += 1
            while len(self._entries) > self.max_entries:
                evicted_key, _ = self._entries.popitem(last=False)
                owner = self._by_token.get(evicted_key[0])
                if owner is not None:
                    owner.keys.discard(evicted_key)
                self.stats.evictions += 1

    # ------------------------------------------------------------------
    # Single-flight table
    # ------------------------------------------------------------------
    def begin_flight(self, key: object) -> Optional[threading.Event]:
        """Claim leadership of one in-flight computation.

        Returns ``None`` when the caller became the leader (it must
        compute, publish, and call :meth:`end_flight`), or the current
        leader's done event to wait on before re-running the lookup.
        Hosting the table on the cache — not the service — means every
        service sharing this store (e.g. through a cluster's shared
        result store) coalesces on the same leader.
        """
        with self._flight_lock:
            event = self._flights.get(key)
            if event is None:
                self._flights[key] = threading.Event()
                return None
            return event

    def end_flight(self, key: object) -> None:
        """Release leadership and wake every waiter (idempotent)."""
        with self._flight_lock:
            event = self._flights.pop(key, None)
        if event is not None:
            event.set()

    # ------------------------------------------------------------------
    # Delta invalidation
    # ------------------------------------------------------------------
    def _on_deltas(
        self,
        subscription: _GraphSubscription,
        deltas: Tuple[GraphDelta, ...],
    ) -> None:
        with self._lock:
            if not subscription.keys:
                return
            graph = subscription.graph_ref()
            if graph is None:  # racing with graph teardown
                self._drop_graph(subscription.token)
                return
            self._judge_group(subscription, graph, deltas, graph.version)

    def _on_cluster_deltas(
        self,
        subscription: _ClusterSubscription,
        deltas: Tuple[GraphDelta, ...],
    ) -> None:
        # Delivered by ``Cluster.apply_update`` under the protocol lock,
        # *after* routing: the version vector describes the post-delta
        # state, which is what a surviving entry's new valid version
        # must be.  A distributed entry replays the query's bus log, so
        # retention must preserve the *observation*, not just the
        # result: edge deltas always drop (they can change fetch
        # traffic around any ball center, however far from every
        # candidate), node deltas retain only when their labels are
        # disjoint from the entry's pattern labels (see the module
        # docstring for why that provably preserves the full replay).
        with self._lock:
            if not subscription.keys:
                return
            cluster = subscription.cluster_ref()
            if cluster is None:  # racing with cluster teardown
                self._drop_graph(subscription.token)
                return
            version = cluster.version_vector()
            node_kinds = (ADD_NODE, REMOVE_NODE, RELABEL)
            nodes_only = all(delta.kind in node_kinds for delta in deltas)
            touched: Set[Label] = set()
            for delta in deltas:
                touched.add(delta.label)
                if delta.kind == RELABEL:
                    touched.add(delta.old_label)
            survivors = []
            dropped = []
            for key in subscription.keys:
                entry = self._entries.get(key)
                if entry is None:
                    dropped.append(key)  # evicted; tidy the key set
                    continue
                if nodes_only and touched.isdisjoint(entry.label_set):
                    survivors.append(entry)
                else:
                    del self._entries[key]
                    dropped.append(key)
                    self.stats.invalidations += 1
            for key in dropped:
                subscription.keys.discard(key)
            for entry in survivors:
                entry.valid_version = version
            self.stats.retained += len(survivors)

    def _judge_group(
        self, subscription, graph, deltas, version
    ) -> None:
        """Judge one delta group against a graph subscription's entries.

        ``graph`` is the delivery-time state and ``version`` the
        freshness stamp surviving entries advance to.
        """
        digest = self._digest_group(graph, deltas)
        label_depths = self._label_depths_if_needed(
            graph, deltas, digest, subscription
        )
        survivors = []
        dropped = []
        for key in subscription.keys:
            entry = self._entries.get(key)
            if entry is None:
                dropped.append(key)  # evicted; tidy the key set
                continue
            if self._group_harmless(digest, entry, label_depths):
                survivors.append(entry)
            else:
                del self._entries[key]
                dropped.append(key)
                self.stats.invalidations += 1
        for key in dropped:
            subscription.keys.discard(key)
        for entry in survivors:
            entry.valid_version = version
        self.stats.retained += len(survivors)

    @staticmethod
    def _digest_group(
        graph: DiGraph, deltas: Tuple[GraphDelta, ...]
    ) -> Tuple[Set[Label], bool, List[Tuple[object, object]], bool]:
        """Resolve one delta group's touched labels, once for all entries.

        Returns ``(node_labels, any_edge, edge_label_pairs, unjudgeable)``:
        every label a node-lifecycle/relabel delta touches, whether any
        edge delta occurred, the (source label, target label) pair of
        each edge delta, and whether anything defied classification
        (unknown kind or unrecoverable endpoint — drops every entry).
        Endpoint labels resolve against the graph, falling back to the
        group's own ``remove_node`` deltas: a removed endpoint has left
        the label map by delivery time, but its removal delta (always in
        the same batch) still carries the label.
        """
        removed_labels: Dict[object, Label] = {
            delta.node: delta.label
            for delta in deltas
            if delta.kind == REMOVE_NODE
        }
        node_labels: Set[Label] = set()
        edge_pairs: List[Tuple[object, object]] = []
        any_edge = False
        unjudgeable = False
        for delta in deltas:
            kind = delta.kind
            if kind == ADD_NODE or kind == REMOVE_NODE:
                node_labels.add(delta.label)
            elif kind == RELABEL:
                node_labels.add(delta.label)
                node_labels.add(delta.old_label)
            elif kind == ADD_EDGE or kind == REMOVE_EDGE:
                any_edge = True
                labels = []
                for node in (delta.source, delta.target):
                    if node in graph:
                        labels.append(graph.label(node))
                    elif node in removed_labels:
                        labels.append(removed_labels[node])
                    else:
                        unjudgeable = True  # cannot prove anything
                        break
                else:
                    edge_pairs.append((labels[0], labels[1]))
            else:
                unjudgeable = True  # unknown delta kind: be safe
        return node_labels, any_edge, edge_pairs, unjudgeable

    def _label_depths_if_needed(
        self,
        graph: DiGraph,
        deltas: Tuple[GraphDelta, ...],
        digest,
        subscription: _GraphSubscription,
    ) -> Optional[Dict[Label, int]]:
        """The edge-delta distance digest, when some entry can use it.

        Returns ``label -> minimum undirected distance from any
        edge-delta endpoint``, computed by one BFS bounded by the
        largest radius among the ball-based entries that the node-label
        rule alone would keep — or ``None`` when no entry needs it (no
        edge deltas, an unjudgeable group, or no radius-stamped
        ball-based survivor candidates), so mutation storms on graphs
        without ball-based entries never pay for a BFS.
        """
        node_labels, any_edge, _, unjudgeable = digest
        if not any_edge or unjudgeable:
            return None
        depth_limit = -1
        for key in subscription.keys:
            entry = self._entries.get(key)
            if (
                entry is not None
                and entry.ball_based
                and entry.radius is not None
                and node_labels.isdisjoint(entry.label_set)
            ):
                depth_limit = max(depth_limit, entry.radius)
        if depth_limit < 0:
            return None
        return self._label_depths(graph, deltas, depth_limit)

    @staticmethod
    def _label_depths(
        graph: DiGraph, deltas: Tuple[GraphDelta, ...], depth_limit: int
    ) -> Dict[Label, int]:
        """Min distance from the group's edge-delta endpoints per label.

        One undirected BFS from *all* edge-delta endpoints (so the
        per-label depth is the minimum over every endpoint) over the
        delivery-time graph **augmented with the group's removed
        edges**.  The augmented edge set is a superset of every
        intermediate state of the group (final = pre ∪ additions −
        removals, hence every intermediate ⊆ final ∪ removals), so the
        BFS distances lower-bound the distances at each delta's own
        application point — "no label in ``L`` within ``d``" here
        implies it for every step, additions and removals alike.  Nodes
        removed in the group are traversed through the overlay (their
        incident edges are all in the group, by the ``remove_node``
        batch contract) but contribute no label: the node-label rule
        already dropped any entry whose label set they touch.
        """
        overlay: Dict[object, Set[object]] = {}
        seeds: Set[object] = set()
        for delta in deltas:
            kind = delta.kind
            if kind == ADD_EDGE or kind == REMOVE_EDGE:
                seeds.add(delta.source)
                seeds.add(delta.target)
                if kind == REMOVE_EDGE:
                    overlay.setdefault(delta.source, set()).add(delta.target)
                    overlay.setdefault(delta.target, set()).add(delta.source)
        labels_raw = graph.labels_raw()
        depths: Dict[Label, int] = {}
        seen: Set[object] = set(seeds)
        frontier = list(seeds)
        for node in frontier:
            label = labels_raw.get(node, _DEPTH_MISS)
            if label is not _DEPTH_MISS and label not in depths:
                depths[label] = 0
        depth = 0
        while frontier and depth < depth_limit:
            next_frontier = []
            for node in frontier:
                if node in labels_raw:
                    neighborhood = [
                        graph.successors_raw(node),
                        graph.predecessors_raw(node),
                        overlay.get(node, ()),
                    ]
                else:  # removed in this group: overlay holds its edges
                    neighborhood = [overlay.get(node, ())]
                for adjacency in neighborhood:
                    for neighbor in adjacency:
                        if neighbor in seen:
                            continue
                        seen.add(neighbor)
                        label = labels_raw.get(neighbor, _DEPTH_MISS)
                        if label is not _DEPTH_MISS and label not in depths:
                            depths[label] = depth + 1
                        next_frontier.append(neighbor)
            frontier = next_frontier
            depth += 1
        return depths

    @staticmethod
    def _group_harmless(
        digest, entry: _Entry, label_depths: Optional[Dict[Label, int]]
    ) -> bool:
        """True iff no delta in the digested group can change ``entry``.

        Implements the rule table in the module docstring as pure set
        work — the per-group label resolution already happened in
        :meth:`_digest_group` (and the per-group distance BFS in
        :meth:`_label_depths_if_needed`), so judging an entry does no
        graph traversal of its own.
        """
        node_labels, any_edge, edge_pairs, unjudgeable = digest
        if unjudgeable:
            return False
        labels = entry.label_set
        if not node_labels.isdisjoint(labels):
            return False
        if not any_edge:
            return True
        if entry.ball_based:
            radius = entry.radius
            if radius is None or label_depths is None:
                return False  # no distance information: any edge may matter
            # Keep iff no candidate label occurs within d_Q of any
            # edge-delta endpoint — then no ball's candidate membership
            # (nor its candidate-to-candidate edge set) can have changed.
            return all(
                label_depths.get(label, _FAR) > radius for label in labels
            )
        return all(
            source not in labels or target not in labels
            for source, target in edge_pairs
        )

    def _drop_graph(self, token: int) -> None:
        with self._lock:
            subscription = self._by_token.pop(token, None)
            if subscription is None:
                return
            for key in subscription.keys:
                self._entries.pop(key, None)
            subscription.keys.clear()
