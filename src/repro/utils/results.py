"""The shared machine-readable result envelope.

Every benchmark artifact (``benchmarks/results/BENCH_*.json``) and every
scenario report (``repro scenarios run --out``) wraps its payload in the
same envelope — ``schema_version``, a ``host`` block and a UTC
``generated_at`` timestamp — so the scenario dashboard can diff any two
result files mechanically without per-file parsing rules.

``benchmarks/conftest.py::emit_result`` delegates here; the scenario
harness (:mod:`repro.scenarios.report`) uses it directly, which is why
the implementation lives in the installable package rather than in the
benchmark tree.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
from pathlib import Path
from typing import Dict

__all__ = ["RESULT_SCHEMA_VERSION", "result_envelope", "write_result"]

#: Version of the shared envelope.  Bump when a shared field changes
#: shape; per-artifact payload fields are owned by their emitter and
#: versioned implicitly through their ``benchmark`` key.
RESULT_SCHEMA_VERSION = 1


def result_envelope(payload: Dict) -> Dict:
    """``payload`` wrapped in the shared metadata envelope.

    The payload keys are merged in as-is and win on collision — an
    emitter may pin its own timestamp for reproducibility, for example.
    """
    envelope = {
        "schema_version": RESULT_SCHEMA_VERSION,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "generated_at": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
    }
    envelope.update(payload)
    return envelope


def write_result(path: "Path | str", payload: Dict) -> Path:
    """Write ``payload`` under the envelope to ``path`` (pretty JSON)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(result_envelope(payload), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path
