"""Seeded randomness helpers.

All dataset generators take explicit integer seeds and derive independent
:class:`random.Random` streams from them, so every experiment in
EXPERIMENTS.md is reproducible bit-for-bit without global state.
"""

from __future__ import annotations

import random
from typing import Iterator


def rng_from_seed(seed: int, salt: str = "") -> random.Random:
    """An independent RNG stream derived from ``seed`` and a salt string.

    Different salts give decorrelated streams from the same seed, so a
    generator can use separate streams for, e.g., topology and labels
    without the two sweeps aliasing.
    """
    return random.Random(f"{seed}:{salt}")


def spawn_streams(seed: int, count: int, salt: str = "") -> Iterator[random.Random]:
    """``count`` decorrelated RNG streams derived from one seed."""
    for index in range(count):
        yield rng_from_seed(seed, f"{salt}:{index}")
