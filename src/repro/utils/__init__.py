"""Shared utilities: seeded RNG streams, timers, result envelopes."""

from repro.utils.results import (
    RESULT_SCHEMA_VERSION,
    result_envelope,
    write_result,
)
from repro.utils.rng import rng_from_seed, spawn_streams
from repro.utils.timer import Timer, timed

__all__ = [
    "RESULT_SCHEMA_VERSION",
    "Timer",
    "result_envelope",
    "rng_from_seed",
    "spawn_streams",
    "timed",
    "write_result",
]
