"""Shared utilities: seeded RNG streams and timers."""

from repro.utils.rng import rng_from_seed, spawn_streams
from repro.utils.timer import Timer, timed

__all__ = ["Timer", "rng_from_seed", "spawn_streams", "timed"]
