"""Wall-clock timing helpers for the performance experiments."""

from __future__ import annotations

import time
from typing import Callable, Tuple, TypeVar

T = TypeVar("T")


class Timer:
    """A context-manager stopwatch.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    __slots__ = ("start", "elapsed")

    def __init__(self) -> None:
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self.start


def timed(fn: Callable[[], T]) -> Tuple[T, float]:
    """Run ``fn`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start
