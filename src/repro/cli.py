"""Command-line interface: match patterns against graphs from files.

Usage (after ``pip install -e .``)::

    python -m repro match --data graph.json --pattern pattern.json
    python -m repro match --data graph.txt --pattern p.json \
        --algorithm sim --format edgelist
    python -m repro workload --data graph.json --queries stream.json \
        --workers 4
    python -m repro generate --kind amazon --nodes 1000 --out g.json
    python -m repro info --data graph.json

Graphs are read either from the JSON format of :mod:`repro.io.jsonio`
(default) or the labeled edge-list format of :mod:`repro.io.edgelist`.
Match results print a human-readable summary and can be dumped as JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.core.digraph import DiGraph
from repro.core.dualsim import dual_simulation
from repro.core.kernel import ENGINES, dual_simulation_kernel, resolve_engine
from repro.core.npkernel import dual_simulation_numpy
from repro.core.matchplus import match_plus
from repro.core.pattern import Pattern
from repro.core.ranking import rank_matches, score_match
from repro.core.simulation import graph_simulation
from repro.core.strong import match
from repro.distributed.partition import PARTITIONERS
from repro.io.edgelist import read_edgelist, write_edgelist
from repro.io.jsonio import (
    match_result_to_dict,
    pattern_from_dict,
    read_graph_json,
    write_graph_json,
)

ALGORITHMS = ("strong", "strong-plus", "dual", "sim", "bounded", "regular")


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared observability flags (match / distributed / workload)."""
    parser.add_argument(
        "--trace", nargs="?", const="-", default=None, metavar="FILE",
        help="enable structured tracing: prints the last query's phase "
             "breakdown after the run and, when FILE is given, writes "
             "the full JSON trace document there",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE",
        help="write a Prometheus-style text exposition of the metrics "
             "registry to FILE after the run",
    )


def _report_observability(args: argparse.Namespace, trace, metrics_out) -> None:
    from repro.obs import (
        QueryReport,
        collector,
        export_traces_json,
        render_prometheus,
    )

    if trace is not None:
        roots = collector().roots()
        if roots:
            print(f"trace: {len(roots)} root span(s) captured")
            print(QueryReport.from_span(roots[-1]).format())
        else:
            print("trace: no spans captured")
        if trace != "-":
            export_traces_json(roots, trace)
            print(f"trace JSON written to {trace}")
    if metrics_out:
        # The distributed command stashes its cluster-merged snapshot
        # (coordinator + worker processes); everything else exposes the
        # process-wide registry.
        snapshot = getattr(args, "_metrics_snapshot", None)
        with open(metrics_out, "w", encoding="utf-8") as handle:
            handle.write(render_prometheus(snapshot))
        print(f"metrics exposition written to {metrics_out}")


def _load_graph(path: str, fmt: str) -> DiGraph:
    if fmt == "edgelist":
        return read_edgelist(path)
    return read_graph_json(path)


def _load_pattern(path: str) -> Pattern:
    with open(path, "r", encoding="utf-8") as handle:
        return pattern_from_dict(json.load(handle))


def _print_relation(relation) -> int:
    if relation.is_empty():
        print("no match")
        return 1
    print(f"match relation with {len(relation)} pairs over "
          f"{len(relation.data_nodes())} data nodes:")
    for u in relation.pattern_nodes():
        images = sorted(map(str, relation.matches_of(u)))
        shown = ", ".join(images[:8]) + (" ..." if len(images) > 8 else "")
        print(f"  {u} -> {{{shown}}}")
    return 0


def _paths_spec(pattern: Pattern, path: Optional[str]):
    """Parse a --paths-spec file into (bounds, constraints, radius).

    The spec attaches hop bounds and regex constraints to pattern edges::

        {"edges": [{"source": "q0", "target": "q1", "bound": 2},
                   {"source": "q1", "target": "q2",
                    "regex": "M*", "bound": null}],
         "radius": 4}

    A present ``"bound": null`` means unbounded reachability (the ``*``
    of Fan et al.); an absent key leaves the algorithm's default (1 for
    plain edges).  Unlisted pattern edges stay direct edges.
    """
    bounds = {}
    constraints = {}
    radius = None
    if path is not None:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        for entry in payload.get("edges", []):
            edge = (entry["source"], entry["target"])
            if "bound" in entry:  # null is meaningful: unbounded
                bounds[edge] = entry["bound"]
            if "regex" in entry:
                constraints[edge] = entry["regex"]
        radius = payload.get("radius")
    return bounds, constraints, radius


def _cmd_match_paths(args: argparse.Namespace, data: DiGraph,
                     pattern: Pattern) -> int:
    """The path-semantics algorithms: bounded / regular matching."""
    from repro.core.bounded import BoundedPattern, bounded_simulation
    from repro.core.regular import RegularPattern, regular_strong_match
    from repro.exceptions import PatternError

    if args.engine == "numpy":
        print("path algorithms run on the reach-index kernel, not the "
              "numpy array engine; use --engine auto, python, or kernel")
        return 2
    try:
        bounds, constraints, radius = _paths_spec(pattern, args.paths_spec)
        if args.algorithm == "bounded":
            if constraints:
                print("regex constraints in the spec require "
                      "--algorithm regular")
                return 2
            relation = bounded_simulation(
                BoundedPattern(pattern, bounds), data, engine=args.engine
            )
            return _print_relation(relation)
        rpattern = RegularPattern(pattern, constraints, bounds)
        result = regular_strong_match(
            rpattern, data, radius=radius, engine=args.engine
        )
    except PatternError as exc:
        print(f"bad paths spec: {exc}")
        return 2
    if not result:
        print("no match")
        return 1
    print(f"{len(result)} perfect subgraph(s):")
    for subgraph in result:
        nodes = sorted(map(str, subgraph.graph.nodes()))
        preview = ", ".join(nodes[:10]) + (" ..." if len(nodes) > 10 else "")
        print(f"  center={subgraph.center!r} "
              f"|V|={subgraph.num_nodes} |E|={subgraph.num_edges}: "
              f"{{{preview}}}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(match_result_to_dict(result), handle, indent=2,
                      sort_keys=True)
        print(f"full result written to {args.out}")
    return 0


def _cmd_match(args: argparse.Namespace) -> int:
    data = _load_graph(args.data, args.format)
    pattern = _load_pattern(args.pattern)
    if args.algorithm in ("bounded", "regular"):
        return _cmd_match_paths(args, data, pattern)
    if args.paths_spec:
        print("--paths-spec only applies to --algorithm bounded|regular")
        return 2
    engine = resolve_engine(args.engine, data)

    if args.algorithm in ("sim", "dual"):
        if args.algorithm == "dual":
            if engine == "kernel":
                runner = dual_simulation_kernel
            elif engine == "numpy":
                runner = dual_simulation_numpy
            else:
                runner = dual_simulation
        else:
            runner = lambda q, g: graph_simulation(q, g, engine=engine)
        return _print_relation(runner(pattern, data))

    if args.algorithm == "strong-plus":
        result = match_plus(pattern, data, engine=engine)
    else:
        result = match(pattern, data, engine=engine)
    if not result:
        print("no match")
        return 1
    print(f"{len(result)} perfect subgraph(s):")
    ranked = rank_matches(result)
    shown = ranked[: args.top] if args.top else ranked
    for subgraph in shown:
        score = score_match(result.pattern, subgraph)
        nodes = sorted(map(str, subgraph.graph.nodes()))
        preview = ", ".join(nodes[:10]) + (" ..." if len(nodes) > 10 else "")
        print(f"  score={score:.3f} center={subgraph.center!r} "
              f"|V|={subgraph.num_nodes} |E|={subgraph.num_edges}: "
              f"{{{preview}}}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(match_result_to_dict(result), handle, indent=2,
                      sort_keys=True)
        print(f"full result written to {args.out}")
    return 0


def _cmd_distributed(args: argparse.Namespace) -> int:
    from repro.distributed import (
        Cluster,
        crossing_ball_bound,
        process_backend_available,
    )

    data = _load_graph(args.data, args.format)
    pattern = _load_pattern(args.pattern)
    assignment = PARTITIONERS[args.partitioner](data, args.sites)
    # --parallel predates --backend and still means "threads"; an
    # explicit --backend wins over it.
    backend = args.backend or ("threads" if args.parallel else "inproc")
    if backend == "processes" and not process_backend_available():
        print("the 'processes' backend is unavailable on this platform "
              "(no fork/forkserver/spawn support)")
        return 2
    repeat = max(1, args.repeat)
    cache_line = None
    with Cluster(
        data, assignment, args.sites, engine=args.engine, backend=backend,
    ) as cluster:
        if repeat == 1:
            report = cluster.run(pattern)
        else:
            # Route repeated runs through the service layer's
            # distributed cache: run 1 pays the protocol, the rest
            # replay the stored report at the cluster's version vector.
            from repro.service import MatchService

            cluster.enable_result_store()
            with MatchService(max_workers=2) as service:
                for _ in range(repeat):
                    report = service.query_distributed(pattern, cluster)
                cache_line = (
                    f"distributed cache: {service.stats.computed} computed, "
                    f"{service.stats.replayed} replayed over {repeat} runs "
                    f"(version vector {cluster.version_vector()})"
                )
        if getattr(args, "metrics_out", None):
            # Merge the worker processes' shipped snapshots while the
            # cluster is still alive; _report_observability writes it.
            args._metrics_snapshot = cluster.metrics_snapshot()

    print(f"{len(report.result)} perfect subgraph(s) across "
          f"{cluster.num_sites} site(s) [engine={args.engine}, "
          f"backend={backend}]")
    for site in sorted(report.per_site_subgraphs):
        count = report.per_site_subgraphs[site]
        fragment = cluster.workers[site].fragment
        print(f"  site {site}: |V|={fragment.num_nodes} "
              f"partial subgraphs={count}")
    kinds = report.bus.units_by_kind()
    print(f"traffic: {report.bus.total_messages} messages, "
          f"{report.bus.total_units} units "
          f"(query={kinds.get('query', 0)}, fetch={kinds.get('fetch', 0)}, "
          f"result={kinds.get('result', 0)})")
    print(f"data shipment (Sec. 4.3 accounted volume): "
          f"{report.data_shipment_units} units")
    if cache_line is not None:
        print(cache_line)
    if args.show_bound:
        bound = crossing_ball_bound(data, assignment, pattern.diameter)
        print(f"locality bound (boundary-crossing balls): {bound} units")
    return 0 if report.result else 1


#: Accepted spellings in workload streams -> service algorithm names.
#: The `match` subcommand calls the strong-simulation algorithms
#: "strong"/"strong-plus"; both vocabularies work here.
_WORKLOAD_ALGORITHM_ALIASES = {
    "strong": "match",
    "strong-plus": "match-plus",
}


def _cmd_workload(args: argparse.Namespace) -> int:
    """Replay a query-stream file against a :class:`MatchService`."""
    from repro.service import (
        SERVICE_ALGORITHMS,
        MatchService,
        Query,
        replay_workload,
    )

    data = _load_graph(args.data, args.format)
    with open(args.queries, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    entries = payload["queries"] if isinstance(payload, dict) else payload

    queries = []
    for entry in entries:
        pattern = pattern_from_dict(entry["pattern"])
        name = entry.get("algorithm", "match-plus")
        algorithm = _WORKLOAD_ALGORITHM_ALIASES.get(name, name)
        if algorithm not in SERVICE_ALGORITHMS:
            known = sorted(
                set(SERVICE_ALGORITHMS) | set(_WORKLOAD_ALGORITHM_ALIASES)
            )
            print(f"unknown algorithm {name!r} in query stream; "
                  f"known: {', '.join(known)}")
            return 2
        for _ in range(int(entry.get("count", 1))):
            queries.append(Query(pattern, data, algorithm, args.engine))
    queries = queries * max(1, args.repeat)
    if not queries:
        print("empty query stream")
        return 1

    cache_size = 0 if args.no_cache else args.cache_size
    with MatchService(max_workers=args.workers, cache_size=cache_size) as svc:
        report, results = replay_workload(svc, queries)
        if getattr(args, "metrics_out", None):
            # Snapshot while the service is alive: its collector-backed
            # counters (service.*, cache.*) fold only live services.
            from repro.obs import get_registry

            args._metrics_snapshot = get_registry().snapshot()

    matched = sum(1 for r in results if len(r) > 0)
    print(f"served {report.queries} queries in {report.seconds:.3f}s "
          f"({report.throughput:.1f} q/s) on {args.workers} worker(s) "
          f"[engine={args.engine}]")
    print("algorithms: " + ", ".join(
        f"{name}={count}" for name, count in sorted(report.by_algorithm.items())
    ))
    # Per-algorithm latency percentiles from this run's registry
    # histograms (log-bucket interpolated, so within one bucket of
    # exact).  The snapshot covers the whole process, but the CLI is a
    # fresh process per run, so the histograms are exactly this replay.
    from repro.obs import get_registry, latency_summary

    rows = latency_summary(get_registry().snapshot())
    if rows:
        print("latency (ms):")
        for name, row in sorted(rows.items()):
            print(f"  {name:<12} n={int(row['count']):<5d} "
                  f"p50={row['p50_ms']:.3f} p99={row['p99_ms']:.3f} "
                  f"mean={row['mean_ms']:.3f}")
    print(f"non-empty results: {matched}/{report.queries}")
    cache = report.stats.cache
    if cache_size <= 0:  # --no-cache or an explicit --cache-size 0
        print("cache: disabled")
    else:
        print(f"cache: {cache.hits} hits / {cache.misses} misses "
              f"(hit rate {cache.hit_rate:.1%}), {cache.stores} stores, "
              f"{cache.invalidations} invalidations, "
              f"{cache.evictions} evictions")
    print(f"executed: {report.stats.computed} computed, "
          f"{report.stats.replayed} replayed from cache, "
          f"{report.stats.coalesced} coalesced in flight")
    return 0


#: Default committed baseline ``scenarios diff`` compares against.
_SCENARIO_BASELINE = "benchmarks/results/BENCH_scenarios.json"


def _cmd_scenarios(args: argparse.Namespace) -> int:
    """The scenario harness: list / run / diff (see repro.scenarios)."""
    from repro.scenarios import (
        SCENARIOS,
        diff_payloads,
        matrix_payload,
        render_cases,
        run_matrix,
    )

    if args.scenarios_command == "list":
        print(f"{'scenario':<22} {'kind':<12} {'scales':<14} cases")
        for manifest in SCENARIOS:
            scales = ",".join(manifest.scales)
            print(f"{manifest.name:<22} {manifest.kind:<12} {scales:<14} "
                  f"{len(manifest.cases())}")
            print(f"  {manifest.title}")
        return 0

    if args.scenarios_command == "run":
        scale = "smoke" if args.smoke else args.scale
        try:
            cases = run_matrix(args.scenario or None, scale)
        except KeyError as exc:
            print(exc.args[0])
            return 2
        print(render_cases(cases))
        payload = matrix_payload(cases, scale)
        if args.out:
            from repro.utils.results import write_result

            write_result(args.out, payload)
            print(f"scenario report written to {args.out}")
        failed = [
            case for case in cases
            if case.skipped is None and case.digest_ok is False
        ]
        for case in failed:
            print(f"DIGEST MISMATCH {case.case_key}: expected "
                  f"{case.expected_digest}, observed {case.digest}")
        return 1 if failed else 0

    # diff: a new report against another report or the committed
    # baseline, flagging digest changes and p99 regressions.
    with open(args.report, "r", encoding="utf-8") as handle:
        after = json.load(handle)
    baseline_path = args.against or _SCENARIO_BASELINE
    try:
        with open(baseline_path, "r", encoding="utf-8") as handle:
            before = json.load(handle)
    except FileNotFoundError:
        print(f"no baseline at {baseline_path}; run "
              f"'repro scenarios run --out {baseline_path}' to seed one")
        return 2
    findings = diff_payloads(
        before, after, threshold=args.threshold, min_delta_ms=args.min_ms
    )
    if not findings:
        print(f"no regressions vs {baseline_path} "
              f"(threshold {args.threshold:.0%}, floor {args.min_ms}ms)")
        return 0
    print(f"{len(findings)} finding(s) vs {baseline_path}:")
    for finding in findings:
        print(f"  [{finding['kind']}] {finding['case']}: "
              f"{finding['detail']}")
    return 1


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "amazon":
        from repro.datasets import generate_amazon

        graph = generate_amazon(args.nodes, seed=args.seed)
    elif args.kind == "youtube":
        from repro.datasets import generate_youtube

        graph = generate_youtube(args.nodes, seed=args.seed)
    else:
        from repro.datasets import generate_graph

        graph = generate_graph(
            args.nodes, alpha=args.alpha, num_labels=args.labels,
            seed=args.seed,
        )
    if args.format == "edgelist":
        write_edgelist(graph, args.out)
    else:
        # JSON requires string/number node ids; generators use ints.
        write_graph_json(graph, args.out)
    print(f"wrote {graph.num_nodes} nodes / {graph.num_edges} edges "
          f"to {args.out}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    graph = _load_graph(args.data, args.format)
    print(f"nodes:  {graph.num_nodes}")
    print(f"edges:  {graph.num_edges}")
    print(f"labels: {len(graph.label_set())}")
    from repro.core.components import connected_components

    components = connected_components(graph)
    print(f"connected components: {len(components)} "
          f"(largest {max(map(len, components)) if components else 0})")
    hist = graph.degree_histogram()
    top = sorted(hist.items(), key=lambda kv: -kv[0])[:5]
    print("top degrees:", ", ".join(f"{d}x{c}" for d, c in top))
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments.registry import EXPERIMENTS, run_experiment

    if not args.experiment:
        print("available experiments:")
        for name, renderer in sorted(EXPERIMENTS.items()):
            doc = (renderer.__doc__ or "").strip().splitlines()
            print(f"  {name:20s} {doc[0] if doc else ''}")
        return 0
    try:
        print(run_experiment(args.experiment, args.scale))
    except KeyError as exc:
        print(exc.args[0])
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Strong simulation for graph pattern matching "
                    "(Ma et al., VLDB 2011).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_match = sub.add_parser("match", help="match a pattern against a graph")
    p_match.add_argument("--data", required=True, help="data graph file")
    p_match.add_argument("--pattern", required=True, help="pattern JSON file")
    p_match.add_argument(
        "--algorithm", choices=ALGORITHMS, default="strong-plus",
        help="matching notion; 'bounded' and 'regular' are the path "
             "extensions (hop bounds / regex edge constraints, see "
             "--paths-spec) (default: strong-plus)",
    )
    p_match.add_argument(
        "--paths-spec",
        help="JSON file attaching hop bounds and regex constraints to "
             "pattern edges for --algorithm bounded|regular: "
             "{\"edges\": [{\"source\": ..., \"target\": ..., "
             "\"bound\": 2, \"regex\": \"a*\"}, ...], \"radius\": 4} "
             "(\"bound\": null = unbounded)",
    )
    p_match.add_argument(
        "--format", choices=("json", "edgelist"), default="json",
        help="data graph file format",
    )
    p_match.add_argument(
        "--engine", choices=ENGINES, default="auto",
        help="execution engine: 'kernel' compiles the data graph to a "
             "CSR integer index (fast), 'numpy' runs vectorized array "
             "passes over the same index (needs numpy; fastest on large "
             "graphs), 'python' forces the reference implementation, "
             "'auto' picks for you (default: auto)",
    )
    p_match.add_argument("--top", type=int, default=0,
                         help="show only the k best-ranked matches")
    p_match.add_argument("--out", help="write the full result as JSON here")
    _add_obs_arguments(p_match)
    p_match.set_defaults(func=_cmd_match)

    p_dist = sub.add_parser(
        "distributed",
        help="match over a simulated partitioned cluster (Section 4.3)",
    )
    p_dist.add_argument("--data", required=True, help="data graph file")
    p_dist.add_argument("--pattern", required=True, help="pattern JSON file")
    p_dist.add_argument(
        "--format", choices=("json", "edgelist"), default="json",
        help="data graph file format",
    )
    p_dist.add_argument("--sites", type=int, default=4,
                        help="number of simulated sites (default: 4)")
    p_dist.add_argument(
        "--partitioner", choices=tuple(PARTITIONERS), default="bfs",
        help="node-to-site assignment strategy (default: bfs)",
    )
    p_dist.add_argument(
        "--engine", choices=ENGINES, default="auto",
        help="per-site execution engine: 'kernel' compiles each fragment "
             "to a CSR index extended with fetched remote records, "
             "'numpy' vectorizes the per-ball fixpoints over that index, "
             "'python' forces the reference per-ball path; traffic "
             "accounting is identical in all cases (default: auto)",
    )
    p_dist.add_argument(
        "--show-bound", action="store_true",
        help="also compute and print the Section 4.3 locality bound "
             "(walks every boundary-crossing ball; slow on large graphs)",
    )
    p_dist.add_argument(
        "--parallel", action="store_true",
        help="evaluate the sites concurrently (one thread per site); "
             "results and traffic accounting are identical to a serial "
             "run (shorthand for --backend threads)",
    )
    p_dist.add_argument(
        "--backend", choices=("inproc", "threads", "processes"),
        default=None,
        help="runtime substrate hosting the site workers: 'inproc' "
             "evaluates serially in this interpreter, 'threads' runs one "
             "thread per site, 'processes' one OS process per site "
             "(off-GIL, multi-core); the protocol observation is "
             "byte-identical across backends (default: inproc, or "
             "threads with --parallel)",
    )
    p_dist.add_argument(
        "--repeat", type=int, default=1,
        help="run the query N times through the service layer's "
             "distributed result cache: run 1 pays the Section 4.3 "
             "protocol, the rest replay the stored report at the "
             "cluster's version vector (default: 1, a plain run)",
    )
    _add_obs_arguments(p_dist)
    p_dist.set_defaults(func=_cmd_distributed)

    p_work = sub.add_parser(
        "workload",
        help="serve a query-stream file through the concurrent "
             "MatchService and report throughput + cache stats",
    )
    p_work.add_argument("--data", required=True, help="data graph file")
    p_work.add_argument(
        "--queries", required=True,
        help="query-stream JSON: {\"queries\": [{\"pattern\": <pattern "
             "dict>, \"algorithm\": \"match-plus\", \"count\": 1}, ...]}",
    )
    p_work.add_argument("--format", choices=("json", "edgelist"),
                        default="json", help="data graph file format")
    p_work.add_argument("--workers", type=int, default=4,
                        help="thread-pool width (default: 4)")
    p_work.add_argument("--engine", choices=ENGINES, default="auto",
                        help="execution engine (default: auto)")
    p_work.add_argument("--repeat", type=int, default=1,
                        help="replay the whole stream N times")
    p_work.add_argument("--cache-size", type=int, default=256,
                        help="result-cache LRU bound (default: 256)")
    p_work.add_argument("--no-cache", action="store_true",
                        help="disable the result cache (baseline mode)")
    _add_obs_arguments(p_work)
    p_work.set_defaults(func=_cmd_workload)

    p_scen = sub.add_parser(
        "scenarios",
        help="the manifest-driven scenario matrix: list, run with digest "
             "+ SLO reporting, or diff two reports (the observability "
             "dashboard over BENCH_*.json)",
    )
    scen_sub = p_scen.add_subparsers(dest="scenarios_command", required=True)

    p_scen_list = scen_sub.add_parser(
        "list", help="list the seeded scenario manifests"
    )
    p_scen_list.set_defaults(func=_cmd_scenarios)

    p_scen_run = scen_sub.add_parser(
        "run",
        help="replay (part of) the matrix deterministically; exits "
             "nonzero when an observation digest misses its pinned value",
    )
    p_scen_run.add_argument(
        "--scenario", action="append", metavar="NAME",
        help="run only this scenario (repeatable; default: all)",
    )
    p_scen_run.add_argument(
        "--scale", choices=("smoke", "S", "M"), default="S",
        help="scale to run every selected scenario at (default: S)",
    )
    p_scen_run.add_argument(
        "--smoke", action="store_true",
        help="shorthand for --scale smoke (the digest-gated CI matrix)",
    )
    p_scen_run.add_argument(
        "--out", metavar="FILE",
        help="write the per-case report JSON (shared result envelope) "
             "here",
    )
    p_scen_run.set_defaults(func=_cmd_scenarios)

    p_scen_diff = scen_sub.add_parser(
        "diff",
        help="compare a scenario report against a baseline report and "
             "flag digest mismatches and p99 regressions",
    )
    p_scen_diff.add_argument(
        "report", help="the new report JSON (from 'scenarios run --out')"
    )
    p_scen_diff.add_argument(
        "against", nargs="?", default=None,
        help=f"baseline report JSON (default: {_SCENARIO_BASELINE})",
    )
    p_scen_diff.add_argument(
        "--threshold", type=float, default=1.0,
        help="fractional p99 growth tolerated before flagging; the "
             "default 1.0 (p99 doubled) equals one log-2 histogram "
             "bucket, so single-bucket jitter never flags",
    )
    p_scen_diff.add_argument(
        "--min-ms", type=float, default=1.0,
        help="absolute p99 growth floor in ms below which relative "
             "regressions are ignored (default: 1.0)",
    )
    p_scen_diff.set_defaults(func=_cmd_scenarios)

    p_gen = sub.add_parser("generate", help="generate a dataset")
    p_gen.add_argument("--kind", choices=("synthetic", "amazon", "youtube"),
                       default="synthetic")
    p_gen.add_argument("--nodes", type=int, required=True)
    p_gen.add_argument("--alpha", type=float, default=1.2)
    p_gen.add_argument("--labels", type=int, default=200)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--format", choices=("json", "edgelist"),
                       default="json")
    p_gen.add_argument("--out", required=True)
    p_gen.set_defaults(func=_cmd_generate)

    p_info = sub.add_parser("info", help="summarize a graph file")
    p_info.add_argument("--data", required=True)
    p_info.add_argument("--format", choices=("json", "edgelist"),
                        default="json")
    p_info.set_defaults(func=_cmd_info)

    p_repro = sub.add_parser(
        "reproduce", help="regenerate a paper table/figure at small scale"
    )
    p_repro.add_argument("experiment", nargs="?",
                         help="experiment name (omit to list)")
    p_repro.add_argument("--scale", type=int, default=600,
                         help="base dataset size (default 600 nodes)")
    p_repro.set_defaults(func=_cmd_reproduce)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    trace = getattr(args, "trace", None)
    metrics_out = getattr(args, "metrics_out", None)
    if trace is None and metrics_out is None:
        return args.func(args)
    from repro.obs import collector, set_tracing

    previous = None
    if trace is not None:
        collector().clear()  # the document should cover this run only
        previous = set_tracing(True)
    try:
        code = args.func(args)
    finally:
        if trace is not None:
            set_tracing(previous)
    _report_observability(args, trace, metrics_out)
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
