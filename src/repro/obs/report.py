"""Per-query phase breakdowns derived from a finished trace.

:class:`QueryReport` flattens one root span into the view an operator
reads: total duration, one row per direct child phase (with its share
of the total and its key attributes), and the query's bus-traffic
attributes when the span carries them (``distributed.run`` spans do).
The CLI's ``--trace`` flag and ``examples/traced_query.py`` print it.

:func:`latency_summary` is the registry-side companion: it folds the
``service.query_seconds{algorithm=..}`` histograms of one metrics
snapshot (typically a :func:`~repro.obs.metrics.subtract_snapshots`
window) into per-algorithm p50/p99/mean rows — the SLO view the
scenario harness reports per case and the ``workload`` CLI prints at
end of run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.obs.metrics import HistogramSnapshot
from repro.obs.trace import Span

__all__ = ["PhaseRow", "QueryReport", "latency_summary"]

#: The histogram the per-algorithm latency rows come from.
_QUERY_SECONDS_PREFIX = "service.query_seconds"


def latency_summary(snapshot: Dict[str, Any]) -> Dict[str, Dict[str, float]]:
    """Per-algorithm latency rows from a metrics snapshot.

    Returns ``{algorithm: {"count", "mean_ms", "p50_ms", "p99_ms"}}``
    for every non-empty ``service.query_seconds{algorithm=..}``
    histogram in ``snapshot``, plus a ``"queue_wait"`` row for
    ``service.queue_wait_seconds`` when present.  Percentiles use
    :meth:`~repro.obs.metrics.HistogramSnapshot.percentile` (log-bucket
    interpolation), so they are within one log-2 bucket of exact.
    """
    rows: Dict[str, Dict[str, float]] = {}

    def row_of(data: Dict[str, Any]) -> Dict[str, float]:
        hist = HistogramSnapshot.from_dict(data)
        return {
            "count": hist.count,
            "mean_ms": hist.mean * 1e3,
            "p50_ms": hist.percentile(0.5) * 1e3,
            "p99_ms": hist.percentile(0.99) * 1e3,
        }

    for key, data in snapshot.get("histograms", {}).items():
        if data.get("count", 0) <= 0:
            continue
        if key == "service.queue_wait_seconds":
            rows["queue_wait"] = row_of(data)
        elif key.startswith(_QUERY_SECONDS_PREFIX):
            _, _, labels = key.partition("{")
            algorithm = "all"
            for part in labels.rstrip("}").split(","):
                name, _, value = part.partition("=")
                if name == "algorithm":
                    algorithm = value
            rows[algorithm] = row_of(data)
    return rows

#: Span attributes surfaced inline on a phase row, in display order.
_PHASE_ATTRS = (
    "site",
    "engine",
    "partial",
    "fetch.round_trips",
    "fetch.records",
    "fetch.units",
    "balls.scanned",
    "balls.matched",
    "outcome",
    "deltas",
)


@dataclass
class PhaseRow:
    """One direct child phase of the reported span."""

    name: str
    duration: float
    fraction: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        details = ", ".join(
            f"{key}={self.attrs[key]}"
            for key in _PHASE_ATTRS
            if key in self.attrs
        )
        line = (
            f"  {self.name:<24} {self.duration * 1e3:9.3f} ms"
            f"  {self.fraction * 100:5.1f}%"
        )
        return f"{line}  [{details}]" if details else line


@dataclass
class QueryReport:
    """The phase breakdown of one traced query."""

    name: str
    duration: float
    phases: List[PhaseRow]
    attrs: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_span(cls, span: Span) -> "QueryReport":
        total = span.duration or 1e-12
        phases = [
            PhaseRow(
                child.name,
                child.duration,
                child.duration / total,
                dict(child.attrs),
            )
            for child in span.children
        ]
        return cls(span.name, span.duration, phases, dict(span.attrs))

    @property
    def bus_log(self) -> Tuple[Tuple[int, int, str, int], ...]:
        """The per-query bus charges the span carries (or ``()``)."""
        return tuple(tuple(entry) for entry in self.attrs.get("bus.log", ()))

    def bus_units_by_kind(self) -> Dict[str, int]:
        """Shipped units per message kind, from the span's bus log."""
        units: Dict[str, int] = {}
        for _, _, kind, amount in self.bus_log:
            units[kind] = units.get(kind, 0) + amount
        return units

    def format(self) -> str:
        """A readable multi-line breakdown (what ``--trace`` prints)."""
        lines = [f"{self.name}: {self.duration * 1e3:.3f} ms total"]
        lines.extend(row.format() for row in self.phases)
        by_kind = self.bus_units_by_kind()
        if by_kind:
            rendered = ", ".join(
                f"{kind}={units}" for kind, units in sorted(by_kind.items())
            )
            lines.append(
                f"  bus traffic: {len(self.bus_log)} messages ({rendered})"
            )
        return "\n".join(lines)
