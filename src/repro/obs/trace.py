"""Structured tracing: context-manager spans with monotonic timings.

A *span* is one timed region of work — ``with span("kernel.match"):`` —
carrying a name, a start/end pair from :func:`time.perf_counter`, a dict
of typed attributes and a list of child spans.  Spans nest through a
per-thread stack: a span entered while another is open on the same
thread becomes its child; a span that closes with an empty stack is a
*root* and lands in the process-wide :class:`TraceCollector`.

The whole API compiles to a no-op when tracing is disabled (the
default): :func:`span` / :func:`capture` return the one shared
:data:`NOOP_SPAN` singleton, whose ``__enter__`` / ``__exit__`` /
``set`` do nothing and allocate nothing.  The disabled cost of an
instrumented call site is therefore one module-global read plus one
``with`` protocol round on a slotted singleton — gated at ≤2% of the
smoke benchmark in ``benchmarks/bench_kernel.py``.

Cross-thread and cross-process assembly (the distributed merged trace)
uses *captured* spans: :func:`capture` times a region exactly like
:func:`span` but does **not** attach the finished span to the local
stack or collector — the caller grafts it explicitly with
:meth:`Span.adopt` (site subtrees under the coordinator's
``distributed.run`` span, shipped in wire form between processes via
:func:`span_to_dict` / :func:`span_from_dict`).

Timings are per-process monotonic clocks: durations are meaningful
everywhere, absolute ``start``/``end`` values only within the process
that produced them.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from typing import Any, Dict, List, Optional

from time import perf_counter

__all__ = [
    "NOOP_SPAN",
    "Span",
    "TraceCollector",
    "capture",
    "collector",
    "current_span",
    "export_traces_json",
    "set_tracing",
    "span",
    "span_from_dict",
    "span_to_dict",
    "tracing_enabled",
]

#: Version stamp of the JSON trace document written by
#: :func:`export_traces_json`.
TRACE_SCHEMA_VERSION = 1

#: Root spans the collector retains (oldest dropped first); bounds the
#: memory of long tracing-enabled runs (e.g. a whole differential suite
#: under ``REPRO_TRACE=1``) without a drain between queries.
DEFAULT_COLLECTOR_CAPACITY = 4096


class _NoopSpan:
    """The disabled path: one immortal, attribute-less, allocation-free
    stand-in returned by :func:`span` / :func:`capture` while tracing is
    off.  Every method is a no-op returning ``self`` so instrumented
    code never branches on the tracing state."""

    __slots__ = ()

    #: Discriminator instrumented code may branch on to skip attribute
    #: computation that only matters when a live span will record it.
    enabled = False

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def adopt(self, child: Optional["Span"]) -> "_NoopSpan":
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<noop span>"


NOOP_SPAN = _NoopSpan()


class Span:
    """One live traced region (see the module docstring for semantics)."""

    __slots__ = ("name", "start", "end", "attrs", "children")

    enabled = True

    def __init__(self, name: str) -> None:
        self.name = name
        self.start = 0.0
        self.end = 0.0
        self.attrs: Dict[str, Any] = {}
        self.children: List["Span"] = []

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "Span":
        _thread_stack().append(self)
        self.start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = perf_counter()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        stack = _thread_stack()
        stack.pop()
        self._finish(stack)
        return False

    def _finish(self, stack: List["Span"]) -> None:
        if stack:
            stack[-1].children.append(self)
        else:
            _COLLECTOR.add(self)

    # -- recording ------------------------------------------------------
    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) typed attributes on this span."""
        self.attrs.update(attrs)
        return self

    def adopt(self, child: Optional["Span"]) -> "Span":
        """Graft an already-finished span (subtree) under this one.

        The cross-thread / cross-process assembly primitive: the child
        was timed elsewhere (a site worker, a pool thread) with
        :func:`capture` and is appended verbatim.  ``None`` children are
        ignored so callers can pass through absent site spans.
        """
        if child is not None:
            self.children.append(child)
        return self

    # -- introspection --------------------------------------------------
    @property
    def duration(self) -> float:
        """Wall-clock seconds between enter and exit."""
        return self.end - self.start

    def span_count(self) -> int:
        """Number of spans in this subtree, itself included."""
        return 1 + sum(child.span_count() for child in self.children)

    def find(self, name: str) -> List["Span"]:
        """Every span named ``name`` in this subtree, preorder."""
        found = [self] if self.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, "
            f"{len(self.children)} children)"
        )


class _CapturedSpan(Span):
    """A span timed normally but *detached* on exit (see :func:`capture`)."""

    __slots__ = ()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = perf_counter()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        _thread_stack().pop()
        # Deliberately not attached to the parent or the collector: the
        # caller owns the finished span and grafts it via Span.adopt.
        return False


class TraceCollector:
    """Process-wide sink for finished root spans (bounded, thread-safe)."""

    def __init__(self, capacity: int = DEFAULT_COLLECTOR_CAPACITY) -> None:
        self._roots: "deque[Span]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        #: Roots discarded because the collector was full.
        self.dropped = 0

    def add(self, root: Span) -> None:
        with self._lock:
            if len(self._roots) == self._roots.maxlen:
                self.dropped += 1
            self._roots.append(root)

    def roots(self) -> List[Span]:
        """A snapshot of the retained root spans, oldest first."""
        with self._lock:
            return list(self._roots)

    def drain(self) -> List[Span]:
        """Remove and return the retained roots (oldest first)."""
        with self._lock:
            drained = list(self._roots)
            self._roots.clear()
            return drained

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()
            self.dropped = 0


_COLLECTOR = TraceCollector()

_TLS = threading.local()

#: The one switch the hot path reads.  ``REPRO_TRACE`` in the
#: environment enables tracing at import so whole test suites (and
#: forked worker processes) run traced without code changes — the CI
#: "differential suite under tracing" job uses exactly this.
_ENABLED = bool(os.environ.get("REPRO_TRACE"))


def _thread_stack() -> List[Span]:
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = []
        _TLS.stack = stack
    return stack


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def tracing_enabled() -> bool:
    """Whether :func:`span` currently returns live spans."""
    return _ENABLED


def set_tracing(enabled: bool) -> bool:
    """Flip the process-wide tracing switch; returns the previous state."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


def span(name: str):
    """A live :class:`Span` — or :data:`NOOP_SPAN` while tracing is off."""
    if not _ENABLED:
        return NOOP_SPAN
    return Span(name)


def capture(name: str):
    """Like :func:`span`, but the finished span detaches for grafting.

    Returns :data:`NOOP_SPAN` while tracing is off; a live captured span
    reports ``.enabled`` ``True``, which is the discriminator callers
    use to decide whether there is a subtree to ship/adopt.
    """
    if not _ENABLED:
        return NOOP_SPAN
    return _CapturedSpan(name)


def current_span():
    """The innermost open span on this thread, or :data:`NOOP_SPAN`."""
    stack = getattr(_TLS, "stack", None)
    if stack:
        return stack[-1]
    return NOOP_SPAN


def collector() -> TraceCollector:
    """The process-wide root-span collector."""
    return _COLLECTOR


# ----------------------------------------------------------------------
# Serialization (wire + JSON export share one plain-dict form)
# ----------------------------------------------------------------------
def span_to_dict(span_obj: Span) -> Dict[str, Any]:
    """The plain-data form of a span subtree (wire and JSON share it)."""
    return {
        "name": span_obj.name,
        "start": span_obj.start,
        "end": span_obj.end,
        "attrs": dict(span_obj.attrs),
        "children": [span_to_dict(child) for child in span_obj.children],
    }


def span_from_dict(payload: Dict[str, Any]) -> Span:
    """Rebuild a :class:`Span` subtree from its plain-data form."""
    rebuilt = Span(payload["name"])
    rebuilt.start = payload["start"]
    rebuilt.end = payload["end"]
    rebuilt.attrs = dict(payload["attrs"])
    rebuilt.children = [
        span_from_dict(child) for child in payload["children"]
    ]
    return rebuilt


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of attribute values to JSON-safe data."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(
            value, (set, frozenset)
        ) else value
        return [_jsonable(v) for v in items]
    return repr(value)


def _json_span(span_obj: Span) -> Dict[str, Any]:
    return {
        "name": span_obj.name,
        "start": span_obj.start,
        "duration": span_obj.duration,
        "attrs": {k: _jsonable(v) for k, v in span_obj.attrs.items()},
        "children": [_json_span(child) for child in span_obj.children],
    }


def export_traces_json(
    roots: Optional[List[Span]] = None, path: Optional[str] = None
) -> str:
    """Serialize root spans (default: the collector's) as a JSON document.

    Returns the JSON text; writes it to ``path`` when given.  The
    document is ``{"schema_version", "dropped", "traces": [...]}`` with
    each trace a nested ``{name, start, duration, attrs, children}``
    object; non-JSON attribute values degrade to ``repr`` strings.
    """
    if roots is None:
        roots = _COLLECTOR.roots()
    document = {
        "schema_version": TRACE_SCHEMA_VERSION,
        "dropped": _COLLECTOR.dropped,
        "traces": [_json_span(root) for root in roots],
    }
    text = json.dumps(document, indent=2, sort_keys=True)
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    return text
