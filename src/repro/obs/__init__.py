"""Unified observability: structured tracing spans + a metrics registry.

The introspection substrate for every layer of the reproduction:

* :mod:`repro.obs.trace` — context-manager spans with monotonic
  timings, parent/child nesting and typed attributes, compiled to a
  zero-allocation no-op while tracing is disabled (the default).
* :mod:`repro.obs.metrics` — the process-wide registry (counters,
  gauges, log-bucket histograms) that absorbs the existing ad-hoc stats
  objects behind one dotted namespace and renders Prometheus-style
  text expositions.
* :mod:`repro.obs.report` — per-query :class:`QueryReport` phase
  breakdowns derived from finished spans.

Enable tracing programmatically (``set_tracing(True)``), per CLI run
(``--trace out.json``), or for a whole process tree via the
``REPRO_TRACE`` environment variable (inherited by forked site worker
processes, which additionally honor the per-query trace flag the
coordinator broadcasts).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    HISTOGRAM_BUCKETS,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    get_registry,
    merge_snapshots,
    render_prometheus,
    subtract_snapshots,
)
from repro.obs.report import PhaseRow, QueryReport, latency_summary
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    TraceCollector,
    capture,
    collector,
    current_span,
    export_traces_json,
    set_tracing,
    span,
    span_from_dict,
    span_to_dict,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "HISTOGRAM_BUCKETS",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "NOOP_SPAN",
    "PhaseRow",
    "QueryReport",
    "Span",
    "TraceCollector",
    "capture",
    "collector",
    "current_span",
    "export_traces_json",
    "get_registry",
    "latency_summary",
    "merge_snapshots",
    "render_prometheus",
    "set_tracing",
    "subtract_snapshots",
    "span",
    "span_from_dict",
    "span_to_dict",
    "tracing_enabled",
]
