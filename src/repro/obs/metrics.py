"""The process-wide metrics registry: counters, gauges, histograms.

One dotted namespace unifies every layer's counters — the names the
rest of the system publishes under (see ROADMAP "Observability"):

================  =====================================================
``index.*``       compiled-index maintenance (``full_compiles``,
                  ``incremental_syncs``, ``deltas_applied``,
                  ``label_moves``)
``reach.*``       reachability-labeling kernel (``builds``, ``patches``,
                  ``drops``, ``probes``)
``cache.*``       result cache (``hits``, ``misses``, ``stores``,
                  ``invalidations``, ``retained``, ``evictions``)
``service.*``     query service (``queries``, ``computed``,
                  ``replayed``, ``coalesced``; histograms
                  ``service.query_seconds{algorithm=..}``,
                  ``service.queue_wait_seconds``)
``bus.*``         distributed bus traffic (``messages``,
                  ``units{kind=..}``, ``units{link=..}``)
``site.*``        per-site worker counters (``index_builds``,
                  ``queries_served``)
``wire.*``        runtime wire frames (``frames{kind=..,op=..}``)
================  =====================================================

Two publication styles coexist deliberately:

* **Live instruments** (:meth:`MetricsRegistry.counter` /
  :meth:`gauge` / :meth:`histogram`) for low-frequency events — one
  lock-guarded update per service query or wire frame.
* **Collectors** (:meth:`MetricsRegistry.register_collector`) for the
  hot paths: the existing ad-hoc stats objects (``IndexStats``,
  ``ServiceStats``/``CacheStats``, the message bus) keep their
  zero-overhead plain-int increments, and a registered callback
  *absorbs* them into the namespace at :meth:`snapshot` time.  The hot
  loops pay nothing; the registry still reports one unified view.

Snapshots are plain dicts (picklable — the process-backend workers ship
them to the coordinator in wire form), mergeable with
:func:`merge_snapshots`, and renderable as a Prometheus-style text
exposition via :func:`render_prometheus`.

Histograms use fixed log-scale buckets (base-2, 1µs … ~67s) so latency
percentiles are comparable across runs and mergeable across processes
without bucket renegotiation.
"""

from __future__ import annotations

import threading
import weakref
from bisect import bisect_left
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "HISTOGRAM_BUCKETS",
    "MetricsRegistry",
    "get_registry",
    "merge_snapshots",
    "render_prometheus",
    "subtract_snapshots",
]

#: Version stamp carried inside every snapshot (and over the wire).
METRICS_SCHEMA_VERSION = 1

#: Fixed log-scale histogram bucket upper bounds, in seconds: powers of
#: two from 1µs to 2^26µs (~67s).  Observations above the last bound
#: land in the implicit +Inf bucket.
HISTOGRAM_BUCKETS: Tuple[float, ...] = tuple(
    1e-6 * (2 ** i) for i in range(27)
)


class Counter:
    """A monotonically increasing count (thread-safe)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A settable point-in-time value (thread-safe)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed log-bucket latency histogram (thread-safe).

    ``counts[i]`` counts observations ``<= HISTOGRAM_BUCKETS[i]`` (and
    greater than the previous bound); ``counts[-1]`` is the +Inf bucket.
    """

    __slots__ = ("counts", "_sum", "_count", "_lock")

    def __init__(self) -> None:
        self.counts = [0] * (len(HISTOGRAM_BUCKETS) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(HISTOGRAM_BUCKETS, value)
        with self._lock:
            self.counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def percentile(self, q: float) -> float:
        """Log-bucket-interpolated quantile ``q`` (0..1).

        Delegates to :meth:`HistogramSnapshot.percentile` over a locked
        copy of the buckets — exact to within one log-2 bucket, which is
        what SLO reporting needs (p50/p99 against a latency target), not
        exact order statistics.
        """
        return self.snapshot_view().percentile(q)

    def snapshot_view(self) -> "HistogramSnapshot":
        """A consistent immutable copy of this histogram's state."""
        with self._lock:
            return HistogramSnapshot(list(self.counts), self._sum, self._count)


class HistogramSnapshot:
    """One histogram's snapshot data, with the shared percentile math.

    Wraps the ``{"counts", "sum", "count"}`` dict a registry
    :meth:`MetricsRegistry.snapshot` (or :func:`merge_snapshots` /
    :func:`subtract_snapshots`) carries per histogram key.  This is the
    primitive the scenario harness's SLO report and the ``workload``
    CLI's latency summary both use.
    """

    __slots__ = ("counts", "sum", "count")

    def __init__(self, counts, sum: float = 0.0, count: int = 0) -> None:
        self.counts = list(counts)
        self.sum = sum
        self.count = count

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HistogramSnapshot":
        return cls(data["counts"], data.get("sum", 0.0), data.get("count", 0))

    @classmethod
    def from_snapshot(
        cls, snapshot: Dict[str, Any], name: str, **labels: Any
    ) -> Optional["HistogramSnapshot"]:
        """Pull ``name{labels}`` out of a registry snapshot (or None)."""
        key = _render_key(name, _label_items(labels))
        data = snapshot.get("histograms", {}).get(key)
        return None if data is None else cls.from_dict(data)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Quantile ``q`` (0..1) with log-bucket interpolation.

        The bucket containing rank ``q * count`` is found by a
        cumulative walk, then the answer is interpolated *inside* that
        bucket: linearly in the first bucket (whose lower edge is 0),
        geometrically (``lower * (upper/lower)**fraction``) in every
        other — the natural interpolation on a log-2 bucket grid.  The
        result therefore always lies within one bucket boundary of the
        exact order statistic.

        Edge behavior: an empty snapshot reports ``0.0``; a snapshot
        whose observations all share one bucket interpolates within that
        bucket (``q -> 0`` gives its lower edge, ``q = 1`` its upper);
        observations beyond the last bound (the +Inf bucket) report the
        last finite bound.
        """
        total = self.count
        if total <= 0:
            return 0.0
        q = min(max(q, 0.0), 1.0)
        rank = q * total
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                if index >= len(HISTOGRAM_BUCKETS):
                    return HISTOGRAM_BUCKETS[-1]
                upper = HISTOGRAM_BUCKETS[index]
                lower = HISTOGRAM_BUCKETS[index - 1] if index else 0.0
                fraction = (rank - previous) / bucket_count
                fraction = min(max(fraction, 0.0), 1.0)
                if lower <= 0.0:
                    return upper * fraction
                return lower * (upper / lower) ** fraction
        return HISTOGRAM_BUCKETS[-1]  # pragma: no cover - defensive


def _render_key(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    """``name{k=v,...}`` with sorted labels — the snapshot dict key."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def _label_items(labels: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """One process's metric namespace (instruments + collectors)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, tuple], Counter] = {}
        self._gauges: Dict[Tuple[str, tuple], Gauge] = {}
        self._histograms: Dict[Tuple[str, tuple], Histogram] = {}
        #: Weakly held collector *owners* mapped to their sample
        #: callbacks: a callback yields ``(name, labels_dict, value)``
        #: triples at snapshot time and dies with its owner, so a
        #: temporary MatchService or Cluster never leaks a collector.
        self._collectors: "weakref.WeakKeyDictionary[object, Callable]" = (
            weakref.WeakKeyDictionary()
        )

    # -- instruments ----------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_items(labels))
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = Counter()
                self._counters[key] = instrument
            return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_items(labels))
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = Gauge()
                self._gauges[key] = instrument
            return instrument

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = (name, _label_items(labels))
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = Histogram()
                self._histograms[key] = instrument
            return instrument

    # -- collectors -----------------------------------------------------
    def register_collector(
        self,
        owner: object,
        sample: Callable[[], Iterable[Tuple[str, Dict[str, Any], float]]],
    ) -> None:
        """Absorb an existing stats object into the namespace.

        ``sample`` runs at :meth:`snapshot` time and yields
        ``(name, labels, value)`` triples; it must take whatever lock
        guards the stats it reads, so one snapshot is internally
        consistent.  The registration lives exactly as long as
        ``owner`` (held weakly).
        """
        self._collectors[owner] = sample

    # -- views ----------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """One consistent, picklable view of every metric.

        ``{"schema_version", "counters": {key: int}, "gauges":
        {key: float}, "histograms": {key: {"counts", "sum", "count"}}}``
        with collector samples folded into ``counters`` (summed when a
        collector key collides with a live counter or another
        collector's sample).
        """
        with self._lock:
            counters = {
                _render_key(*key): instrument.value
                for key, instrument in self._counters.items()
            }
            gauges = {
                _render_key(*key): instrument.value
                for key, instrument in self._gauges.items()
            }
            histograms = {}
            for key, instrument in self._histograms.items():
                with instrument._lock:
                    histograms[_render_key(*key)] = {
                        "counts": list(instrument.counts),
                        "sum": instrument._sum,
                        "count": instrument._count,
                    }
            samples = list(self._collectors.values())
        for sample in samples:
            for name, labels, value in sample():
                key = _render_key(name, _label_items(labels))
                counters[key] = counters.get(key, 0) + value
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def reset(self) -> None:
        """Drop every instrument (collectors stay registered)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def merge_snapshots(*snapshots: Dict[str, Any]) -> Dict[str, Any]:
    """Sum snapshots (counters and histogram buckets add; gauges keep
    the last seen value) — how the coordinator folds the per-site
    snapshots the process-backend workers ship back into one view."""
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    for snap in snapshots:
        for key, value in snap.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + value
        gauges.update(snap.get("gauges", {}))
        for key, data in snap.get("histograms", {}).items():
            merged = histograms.get(key)
            if merged is None:
                histograms[key] = {
                    "counts": list(data["counts"]),
                    "sum": data["sum"],
                    "count": data["count"],
                }
            else:
                merged["counts"] = [
                    a + b for a, b in zip(merged["counts"], data["counts"])
                ]
                merged["sum"] += data["sum"]
                merged["count"] += data["count"]
    return {
        "schema_version": METRICS_SCHEMA_VERSION,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


def subtract_snapshots(
    after: Dict[str, Any], before: Dict[str, Any]
) -> Dict[str, Any]:
    """``after - before``: the metrics window between two snapshots.

    Counters and histogram buckets subtract key-wise (a key absent from
    ``before`` counts as zero); gauges keep ``after``'s point-in-time
    values.  This is how the scenario harness isolates one case's
    latency histograms and traffic counters out of the process-wide
    registry.  Values can go negative if a collector's owner (a service,
    a cluster) was garbage-collected between the snapshots — hold the
    owners alive across the window for an exact delta.
    """
    counters: Dict[str, float] = {}
    for key, value in after.get("counters", {}).items():
        counters[key] = value - before.get("counters", {}).get(key, 0)
    histograms: Dict[str, Dict[str, Any]] = {}
    before_hists = before.get("histograms", {})
    for key, data in after.get("histograms", {}).items():
        prior = before_hists.get(key)
        if prior is None:
            histograms[key] = {
                "counts": list(data["counts"]),
                "sum": data["sum"],
                "count": data["count"],
            }
        else:
            histograms[key] = {
                "counts": [
                    a - b for a, b in zip(data["counts"], prior["counts"])
                ],
                "sum": data["sum"] - prior["sum"],
                "count": data["count"] - prior["count"],
            }
    return {
        "schema_version": METRICS_SCHEMA_VERSION,
        "counters": counters,
        "gauges": dict(after.get("gauges", {})),
        "histograms": histograms,
    }


def _prometheus_name(key: str) -> Tuple[str, str]:
    """Split a snapshot key into a mangled metric name and label block."""
    if "{" in key:
        name, _, rest = key.partition("{")
        labels = rest.rstrip("}")
        rendered = ",".join(
            f'{part.partition("=")[0]}="{part.partition("=")[2]}"'
            for part in labels.split(",")
        )
        label_block = "{" + rendered + "}"
    else:
        name, label_block = key, ""
    return "repro_" + name.replace(".", "_").replace("-", "_"), label_block


def render_prometheus(snapshot: Optional[Dict[str, Any]] = None) -> str:
    """A Prometheus-style text exposition of ``snapshot``.

    Counters render as ``# TYPE <name> counter`` plus one sample per
    label set; histograms render cumulative ``_bucket{le=..}`` samples
    with ``_sum`` / ``_count``, Prometheus-classic shape.
    """
    if snapshot is None:
        snapshot = get_registry().snapshot()
    lines: List[str] = []
    typed: Dict[str, str] = {}

    def emit(kind: str, key: str, value: Any) -> List[str]:
        name, label_block = _prometheus_name(key)
        out = []
        if typed.get(name) is None:
            typed[name] = kind
            out.append(f"# TYPE {name} {kind}")
        out.append(f"{name}{label_block} {value}")
        return out

    for key in sorted(snapshot.get("counters", {})):
        lines.extend(emit("counter", key, snapshot["counters"][key]))
    for key in sorted(snapshot.get("gauges", {})):
        lines.extend(emit("gauge", key, snapshot["gauges"][key]))
    for key in sorted(snapshot.get("histograms", {})):
        data = snapshot["histograms"][key]
        name, label_block = _prometheus_name(key)
        if typed.get(name) is None:
            typed[name] = "histogram"
            lines.append(f"# TYPE {name} histogram")
        inner = label_block[1:-1] if label_block else ""
        cumulative = 0
        for bound, count in zip(HISTOGRAM_BUCKETS, data["counts"]):
            cumulative += count
            sep = "," if inner else ""
            lines.append(
                f'{name}_bucket{{{inner}{sep}le="{bound:.6g}"}} {cumulative}'
            )
        sep = "," if inner else ""
        lines.append(
            f'{name}_bucket{{{inner}{sep}le="+Inf"}} {data["count"]}'
        )
        lines.append(f"{name}_sum{label_block} {data['sum']}")
        lines.append(f"{name}_count{label_block} {data['count']}")
    return "\n".join(lines) + "\n"


#: The process-wide registry every layer publishes into.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry`."""
    return _REGISTRY
